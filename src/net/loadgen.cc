#include "net/loadgen.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <deque>
#include <thread>

#include "net/client.hh"
#include "obs/timer.hh"
#include "util/json.hh"

namespace lll::net
{

using obs::WallClock;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace
{

enum class ResponseClass
{
    Ok,
    Unavailable,
    Failed,
};

ResponseClass
classify(const std::string &line)
{
    // Responses come from our own renderer; a line that does not
    // parse or lacks a status is itself a failure.
    Result<util::JsonValue> doc = util::parseJson(line);
    if (!doc.ok())
        return ResponseClass::Failed;
    const util::JsonValue *status = doc->find("status");
    if (status == nullptr || !status->isObject())
        return ResponseClass::Failed;
    Result<std::string> code = status->getStringOr("code", "");
    if (!code.ok())
        return ResponseClass::Failed;
    if (*code == "ok")
        return ResponseClass::Ok;
    if (*code == "unavailable")
        return ResponseClass::Unavailable;
    return ResponseClass::Failed;
}

struct ConnStats
{
    uint64_t sent = 0;
    uint64_t received = 0;
    uint64_t ok = 0;
    uint64_t unavailable = 0;
    uint64_t failed = 0;
    bool connectionError = false;
    std::string error;
    obs::Log2Histogram lat;
    obs::Log2Histogram okLat;
    obs::Log2Histogram shedLat;
};

void
runConnection(const LoadGenParams &params, int conn_index,
              WallClock::time_point send_deadline, ConnStats *stats)
{
    Result<BlockingClient> client =
        params.unixPath.empty()
            ? BlockingClient::connectTcp(params.host, params.port)
            : BlockingClient::connectUnix(params.unixPath);
    if (!client.ok()) {
        stats->connectionError = true;
        stats->error = client.status().toString();
        return;
    }
    const int fd = client->fd();
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

    // Pacing: each connection sends its 1/connections share of the
    // aggregate target, staggered by index so arrivals interleave.
    const double interval_ns =
        params.qps > 0.0 ? 1e9 * double(params.connections) / params.qps
                         : 0.0;
    WallClock::time_point next_send =
        WallClock::now() +
        std::chrono::nanoseconds(int64_t(
            interval_ns * double(conn_index) /
            double(params.connections > 0 ? params.connections : 1)));

    std::string outbuf, rxbuf;
    size_t outoff = 0;
    std::deque<WallClock::time_point> pending; // send time FIFO
    size_t line_idx = size_t(conn_index);
    bool sending = true;
    WallClock::time_point drain_start;

    for (;;) {
        WallClock::time_point now = WallClock::now();
        if (sending && now >= send_deadline) {
            sending = false;
            drain_start = now;
        }

        // Enqueue as many sends as the window and the pacer allow.
        while (sending && pending.size() < size_t(params.pipeline) &&
               (interval_ns == 0.0 || now >= next_send)) {
            const std::string &line =
                params.requestLines[line_idx %
                                    params.requestLines.size()];
            ++line_idx;
            outbuf += line;
            outbuf += '\n';
            pending.push_back(now);
            ++stats->sent;
            if (interval_ns > 0.0) {
                next_send +=
                    std::chrono::nanoseconds(int64_t(interval_ns));
            }
        }

        if (!sending) {
            if (pending.empty())
                break; // every response accounted for
            if (obs::wallDeltaNs(drain_start, now) / 1e6 >
                double(params.drainTimeoutMs)) {
                stats->error = "timed out waiting for " +
                               std::to_string(pending.size()) +
                               " final responses";
                break;
            }
        }

        // Sleep until there is something to do.
        int timeout_ms = 100;
        if (sending && interval_ns > 0.0 &&
            pending.size() < size_t(params.pipeline)) {
            const double until_ms =
                obs::wallDeltaNs(now, next_send) / 1e6;
            if (until_ms < double(timeout_ms))
                timeout_ms = until_ms <= 0.0 ? 0 : int(until_ms) + 1;
        }
        pollfd pfd{fd,
                   short(POLLIN |
                         (outoff < outbuf.size() ? POLLOUT : 0)),
                   0};
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            stats->error = std::string("poll: ") + strerror(errno);
            break;
        }
        if (rc == 0)
            continue;

        if (pfd.revents & POLLOUT) {
            while (outoff < outbuf.size()) {
                const ssize_t n =
                    ::send(fd, outbuf.data() + outoff,
                           outbuf.size() - outoff, MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    stats->error =
                        std::string("send: ") + strerror(errno);
                    goto done;
                }
                outoff += size_t(n);
            }
            if (outoff == outbuf.size()) {
                outbuf.clear();
                outoff = 0;
            }
        }

        if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
            char buf[65536];
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)
                    continue;
                stats->error = std::string("recv: ") + strerror(errno);
                break;
            }
            if (n == 0) {
                if (!pending.empty()) {
                    stats->error =
                        "server closed with " +
                        std::to_string(pending.size()) +
                        " responses outstanding";
                }
                break;
            }
            rxbuf.append(buf, size_t(n));
            size_t start = 0;
            for (;;) {
                const size_t nl = rxbuf.find('\n', start);
                if (nl == std::string::npos)
                    break;
                size_t end = nl;
                if (end > start && rxbuf[end - 1] == '\r')
                    --end;
                if (end > start && !pending.empty()) {
                    const std::string line =
                        rxbuf.substr(start, end - start);
                    const double lat_ns = obs::wallDeltaNs(
                        pending.front(), WallClock::now());
                    pending.pop_front();
                    ++stats->received;
                    stats->lat.sample(lat_ns);
                    switch (classify(line)) {
                      case ResponseClass::Ok:
                        ++stats->ok;
                        stats->okLat.sample(lat_ns);
                        break;
                      case ResponseClass::Unavailable:
                        ++stats->unavailable;
                        stats->shedLat.sample(lat_ns);
                        break;
                      case ResponseClass::Failed:
                        ++stats->failed;
                        break;
                    }
                }
                start = nl + 1;
            }
            rxbuf.erase(0, start);
        }
    }
done:;
    // client's destructor closes the fd.
}

} // namespace

Result<LoadGenReport>
runLoadGen(const LoadGenParams &params)
{
    if (params.connections < 1) {
        return Status::error(ErrorCode::InvalidArgument,
                             "need at least one connection");
    }
    if (params.pipeline < 1) {
        return Status::error(ErrorCode::InvalidArgument,
                             "pipeline depth must be >= 1");
    }
    if (params.requestLines.empty()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "no request lines to send");
    }
    if (params.durationS <= 0.0) {
        return Status::error(ErrorCode::InvalidArgument,
                             "duration must be positive");
    }

    const WallClock::time_point start = WallClock::now();
    const WallClock::time_point send_deadline =
        start + std::chrono::nanoseconds(
                    int64_t(params.durationS * 1e9));

    std::vector<ConnStats> stats(size_t(params.connections));
    std::vector<std::thread> threads;
    threads.reserve(size_t(params.connections));
    for (int i = 0; i < params.connections; ++i) {
        threads.emplace_back([&params, i, send_deadline, &stats] {
            runConnection(params, i, send_deadline, &stats[size_t(i)]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    LoadGenReport report;
    report.wallS =
        obs::wallDeltaNs(start, WallClock::now()) / 1e9;
    for (const ConnStats &c : stats) {
        report.sent += c.sent;
        report.received += c.received;
        report.ok += c.ok;
        report.unavailable += c.unavailable;
        report.failed += c.failed;
        if (c.connectionError)
            ++report.connectionErrors;
        if (!c.error.empty() && report.errors.size() < 8)
            report.errors.push_back(c.error);
        report.latencyNs.merge(c.lat);
        report.okLatencyNs.merge(c.okLat);
        report.shedLatencyNs.merge(c.shedLat);
    }
    report.achievedQps =
        report.wallS > 0.0 ? double(report.received) / report.wallS
                           : 0.0;
    if (report.connectionErrors == uint64_t(params.connections)) {
        return Status::error(
            ErrorCode::IoError, "every connection failed: %s",
            report.errors.empty() ? "unknown error"
                                  : report.errors.front().c_str());
    }
    return report;
}

} // namespace lll::net
