#include "net/listener.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "net/frame.hh"
#include "obs/timer.hh"
#include "service/service.hh"
#include "util/names.hh"

namespace lll::net
{

using obs::WallClock;
using util::ErrorCode;
using util::Status;

util::Status
parseHostPort(const std::string &addr, std::string *host, int *port)
{
    const size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= addr.size()) {
        return Status::error(ErrorCode::InvalidArgument,
                             "listen address wants HOST:PORT, got '%s'",
                             addr.c_str());
    }
    char *end = nullptr;
    const long p = std::strtol(addr.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || p < 0 || p > 65535) {
        return Status::error(ErrorCode::InvalidArgument,
                             "bad port in listen address '%s'",
                             addr.c_str());
    }
    *host = addr.substr(0, colon);
    *port = int(p);
    return Status::okStatus();
}

namespace
{

double
msSince(WallClock::time_point t, WallClock::time_point now)
{
    return obs::wallDeltaNs(t, now) / 1e6;
}

Status
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        return Status::error(ErrorCode::IoError,
                             "fcntl(O_NONBLOCK): %s", strerror(errno));
    }
    return Status::okStatus();
}

/** Render the structured response for a request the service never
 *  saw: shed (Unavailable) or a fatal framing error.  Same schema as
 *  every other response line; positional id, data null. */
std::string
outOfBandResponse(uint64_t req_no, const Status &status)
{
    service::RunResponse resp;
    resp.id = "#" + std::to_string(req_no);
    resp.status = status;
    return service::renderRunResponse(resp);
}

} // namespace

struct Listener::Impl
{
    explicit Impl(ListenerParams p) : params(std::move(p)) {}

    // ---- configuration + registry --------------------------------
    ListenerParams params;
    obs::MetricRegistry ownedRegistry;
    obs::MetricRegistry *reg = nullptr;

    // ---- sockets --------------------------------------------------
    int tcpFd = -1;
    int unixFd = -1;
    int wakeRead = -1;
    int wakeWrite = -1;
    int boundPort = 0;
    bool started = false;

    // ---- worker pool ---------------------------------------------
    struct Task
    {
        uint64_t connId = 0;
        uint64_t reqNo = 0;
        std::string line;
        WallClock::time_point admitted;
    };
    struct Completion
    {
        uint64_t connId = 0;
        uint64_t reqNo = 0;
        HandlerResult result;
        WallClock::time_point admitted;
        double queueWaitNs = 0.0;
        double handlerNs = 0.0;
    };
    std::mutex taskMu;
    std::condition_variable taskCv;
    std::deque<Task> tasks;
    bool tasksClosed = false;
    std::mutex compMu;
    std::deque<Completion> completions;
    std::vector<std::thread> workerThreads;

    // ---- connections ---------------------------------------------
    struct Conn
    {
        uint64_t id = 0;
        int fd = -1;
        FrameDecoder decoder;
        uint64_t nextReq = 1;  //!< next request number to assign
        uint64_t nextSend = 1; //!< next request number to respond to
        std::map<uint64_t, std::string> ready; //!< out-of-order done
        size_t outstanding = 0; //!< admitted, not yet responded
        std::string outbuf;
        size_t outoff = 0;
        bool readPaused = false;
        bool eofSeen = false;   //!< client half-closed; flush + close
        bool wantClose = false; //!< close once flushed + drained
        bool partialActive = false;
        WallClock::time_point partialSince;
        WallClock::time_point lastActivity;

        explicit Conn(size_t max_frame) : decoder(max_frame) {}
    };
    std::map<uint64_t, Conn> conns;
    uint64_t nextConnId = 1;
    size_t inflight = 0;

    // ---- lifecycle -----------------------------------------------
    std::atomic<int> shutdownSignals{0};
    bool draining = false;
    WallClock::time_point drainStart;
    WallClock::time_point lastProgress;
    uint64_t responsesWritten = 0;

    // ================================================================

    obs::CounterMetric &counter(const char *name)
    {
        return reg->counter(name);
    }

    void workerLoop()
    {
        for (;;) {
            Task task;
            {
                std::unique_lock<std::mutex> lock(taskMu);
                taskCv.wait(lock, [this] {
                    return tasksClosed || !tasks.empty();
                });
                if (tasks.empty())
                    return; // closed and drained
                task = std::move(tasks.front());
                tasks.pop_front();
            }
            Completion c;
            c.connId = task.connId;
            c.reqNo = task.reqNo;
            c.admitted = task.admitted;
            const WallClock::time_point picked = WallClock::now();
            c.queueWaitNs = obs::wallDeltaNs(task.admitted, picked);
            c.result = params.handler(task.line, task.reqNo);
            c.handlerNs = obs::wallDeltaNs(picked, WallClock::now());
            {
                std::lock_guard<std::mutex> lock(compMu);
                completions.push_back(std::move(c));
            }
            wake();
        }
    }

    void wake()
    {
        const char b = 'c';
        // The pipe is O_NONBLOCK; a full pipe already guarantees a
        // pending wakeup, so a short/failed write is fine.
        [[maybe_unused]] ssize_t n = ::write(wakeWrite, &b, 1);
    }

    Status bindTcp()
    {
        tcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd < 0) {
            return Status::error(ErrorCode::IoError, "socket: %s",
                                 strerror(errno));
        }
        const int one = 1;
        ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sin_family = AF_INET;
        sa.sin_port = htons(uint16_t(params.tcpPort));
        if (::inet_pton(AF_INET, params.tcpHost.c_str(), &sa.sin_addr) !=
            1) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "bad listen host '%s' (IPv4 dotted "
                                 "quad expected)", params.tcpHost.c_str());
        }
        if (::bind(tcpFd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) < 0) {
            return Status::error(ErrorCode::IoError,
                                 "bind %s:%d: %s", params.tcpHost.c_str(),
                                 params.tcpPort, strerror(errno));
        }
        if (::listen(tcpFd, 128) < 0) {
            return Status::error(ErrorCode::IoError, "listen: %s",
                                 strerror(errno));
        }
        sockaddr_in bound;
        socklen_t len = sizeof(bound);
        if (::getsockname(tcpFd, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort = ntohs(bound.sin_port);
        return setNonBlocking(tcpFd);
    }

    Status bindUnix()
    {
        sockaddr_un sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sun_family = AF_UNIX;
        if (params.unixPath.size() >= sizeof(sa.sun_path)) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "unix socket path longer than %zu "
                                 "bytes", sizeof(sa.sun_path) - 1);
        }
        std::memcpy(sa.sun_path, params.unixPath.c_str(),
                    params.unixPath.size() + 1);
        unixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd < 0) {
            return Status::error(ErrorCode::IoError, "socket: %s",
                                 strerror(errno));
        }
        ::unlink(params.unixPath.c_str()); // stale socket file
        if (::bind(unixFd, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) < 0) {
            return Status::error(ErrorCode::IoError, "bind %s: %s",
                                 params.unixPath.c_str(),
                                 strerror(errno));
        }
        if (::listen(unixFd, 128) < 0) {
            return Status::error(ErrorCode::IoError, "listen: %s",
                                 strerror(errno));
        }
        return setNonBlocking(unixFd);
    }

    Status start()
    {
        if (!params.handler) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "listener needs a handler");
        }
        if (params.tcpPort < 0 && params.unixPath.empty()) {
            return Status::error(ErrorCode::InvalidArgument,
                                 "listener needs a TCP port or a unix "
                                 "socket path");
        }
        reg = params.registry ? params.registry : &ownedRegistry;
        if (params.workers < 1)
            params.workers = 1;
        if (params.maxPipelined < 1)
            params.maxPipelined = 1;

        int pipefd[2];
        if (::pipe(pipefd) < 0) {
            return Status::error(ErrorCode::IoError, "pipe: %s",
                                 strerror(errno));
        }
        wakeRead = pipefd[0];
        wakeWrite = pipefd[1];
        LLL_RETURN_IF_ERROR(setNonBlocking(wakeRead));
        LLL_RETURN_IF_ERROR(setNonBlocking(wakeWrite));

        if (params.tcpPort >= 0) {
            Status s = bindTcp();
            if (!s.ok()) {
                closeFds();
                return s;
            }
        }
        if (!params.unixPath.empty()) {
            Status s = bindUnix();
            if (!s.ok()) {
                closeFds();
                return s;
            }
        }
        for (int i = 0; i < params.workers; ++i)
            workerThreads.emplace_back([this] { workerLoop(); });
        started = true;
        return Status::okStatus();
    }

    void closeFds()
    {
        for (int *fd : {&tcpFd, &unixFd, &wakeRead, &wakeWrite}) {
            if (*fd >= 0) {
                ::close(*fd);
                *fd = -1;
            }
        }
        if (!params.unixPath.empty())
            ::unlink(params.unixPath.c_str());
    }

    void stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(taskMu);
            tasksClosed = true;
        }
        taskCv.notify_all();
        for (std::thread &t : workerThreads)
            t.join();
        workerThreads.clear();
    }

    // ---- connection plumbing -------------------------------------

    void teardown(uint64_t conn_id, const char *reason_counter)
    {
        auto it = conns.find(conn_id);
        if (it == conns.end())
            return;
        ::close(it->second.fd);
        conns.erase(it);
        counter(util::names::kNetConnsClosedTotal)++;
        counter(reason_counter)++;
        reg->setGauge(util::names::kNetConnsActive, double(conns.size()));
    }

    void acceptFrom(int lfd)
    {
        for (;;) {
            const int cfd = ::accept(lfd, nullptr, nullptr);
            if (cfd < 0) {
                if (errno == EINTR)
                    continue;
                return; // EAGAIN or transient accept error
            }
            if (conns.size() >= params.maxConns) {
                // Fast, honest rejection beats a backlog the client
                // cannot observe.
                ::close(cfd);
                counter(util::names::kNetConnsRejectedTotal)++;
                continue;
            }
            if (!setNonBlocking(cfd).ok()) {
                ::close(cfd);
                continue;
            }
            if (lfd == tcpFd) {
                const int one = 1;
                ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
            }
            const uint64_t id = nextConnId++;
            auto [it, fresh] =
                conns.emplace(id, Conn(params.maxFrameBytes));
            Conn &conn = it->second;
            conn.id = id;
            conn.fd = cfd;
            conn.lastActivity = WallClock::now();
            counter(util::names::kNetConnsAcceptedTotal)++;
            reg->setGauge(util::names::kNetConnsActive, double(conns.size()));
        }
    }

    /** Move consecutive completed responses into the output buffer. */
    void flushReady(Conn &conn)
    {
        auto it = conn.ready.find(conn.nextSend);
        while (it != conn.ready.end()) {
            conn.outbuf += it->second;
            conn.outbuf += '\n';
            conn.ready.erase(it);
            ++conn.nextSend;
            ++responsesWritten;
            counter(util::names::kNetResponsesTotal)++;
            maybePrintStats();
            it = conn.ready.find(conn.nextSend);
        }
    }

    /** True when the conn was torn down (caller must stop using it). */
    bool attemptWrite(uint64_t conn_id)
    {
        auto cit = conns.find(conn_id);
        if (cit == conns.end())
            return true;
        Conn &conn = cit->second;
        while (conn.outoff < conn.outbuf.size()) {
            const ssize_t n = ::send(
                conn.fd, conn.outbuf.data() + conn.outoff,
                conn.outbuf.size() - conn.outoff, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break; // poll for POLLOUT
                // EPIPE/ECONNRESET: the client is gone.
                teardown(conn_id, util::names::kNetConnsClosedErrorTotal);
                return true;
            }
            counter(util::names::kNetBytesWrittenTotal)
                .increment(uint64_t(n));
            conn.outoff += size_t(n);
            conn.lastActivity = WallClock::now();
        }
        if (conn.outoff == conn.outbuf.size() && conn.outoff > 0) {
            conn.outbuf.clear();
            conn.outoff = 0;
        }
        const size_t pending = conn.outbuf.size() - conn.outoff;
        if (pending >= params.maxWriteBuffer) {
            // The client is not reading; its buffer will not shrink.
            teardown(conn_id, util::names::kNetConnsClosedOverflowTotal);
            return true;
        }
        if ((conn.wantClose || conn.eofSeen) && pending == 0 &&
            conn.outstanding == 0 && conn.ready.empty()) {
            teardown(conn_id, conn.wantClose
                                  ? util::names::kNetConnsClosedProtocolTotal
                                  : util::names::kNetConnsClosedEofTotal);
            return true;
        }
        maybeResumeRead(conn);
        return false;
    }

    /** Reads resume only when every pause condition has cleared. */
    void maybeResumeRead(Conn &conn)
    {
        if (!conn.readPaused)
            return;
        if (conn.eofSeen || conn.wantClose || draining)
            return;
        if (conn.outstanding >= params.maxPipelined)
            return;
        if (conn.outbuf.size() - conn.outoff >=
            params.maxWriteBuffer / 2)
            return;
        conn.readPaused = false;
        // Frames may already be buffered behind the pause point.
        extractFrames(conn.id);
    }

    void shed(Conn &conn, uint64_t req_no, const char *why)
    {
        counter(util::names::kNetRequestsShedTotal)++;
        conn.ready[req_no] = outOfBandResponse(
            req_no,
            Status::error(ErrorCode::Unavailable, "%s — retry later",
                          why));
        flushReady(conn);
    }

    void admit(Conn &conn, uint64_t req_no, std::string line,
               WallClock::time_point now)
    {
        if (inflight == 0)
            lastProgress = now; // arm the watchdog at first admit
        ++inflight;
        ++conn.outstanding;
        counter(util::names::kNetRequestsAdmittedTotal)++;
        reg->setGauge(util::names::kNetInflight, double(inflight));
        Task task;
        task.connId = conn.id;
        task.reqNo = req_no;
        task.line = std::move(line);
        task.admitted = now;
        {
            std::lock_guard<std::mutex> lock(taskMu);
            tasks.push_back(std::move(task));
        }
        taskCv.notify_one();
    }

    /** Pull every complete frame the pause conditions allow. */
    void extractFrames(uint64_t conn_id)
    {
        auto cit = conns.find(conn_id);
        if (cit == conns.end())
            return;
        Conn &conn = cit->second;
        const WallClock::time_point now = WallClock::now();
        std::string frame;
        Status err;
        while (!conn.readPaused && !conn.wantClose) {
            const FrameDecoder::Next r = conn.decoder.next(&frame, &err);
            if (r == FrameDecoder::Next::NeedMore)
                break;
            if (r == FrameDecoder::Next::Error) {
                // One structured error response, then close: the
                // stream cannot be re-synchronized after a framing
                // violation.
                counter(util::names::kNetRequestsMalformedTotal)++;
                conn.ready[conn.nextReq] =
                    outOfBandResponse(conn.nextReq, err);
                ++conn.nextReq;
                conn.wantClose = true;
                flushReady(conn);
                break;
            }
            const uint64_t req_no = conn.nextReq++;
            counter(util::names::kNetRequestsReceivedTotal)++;
            if (draining) {
                shed(conn, req_no, "server is draining");
            } else if (inflight >= params.maxInflight) {
                shed(conn, req_no,
                     "server is at its in-flight request capacity");
            } else {
                admit(conn, req_no, std::move(frame), now);
            }
            if (conn.outstanding >= params.maxPipelined ||
                conn.outbuf.size() - conn.outoff >=
                    params.maxWriteBuffer / 2)
                conn.readPaused = true;
        }
        // (Re)start or clear the slow-loris clock.
        if (conn.decoder.hasPartial()) {
            if (!conn.partialActive) {
                conn.partialActive = true;
                conn.partialSince = now;
            }
        } else {
            conn.partialActive = false;
        }
        attemptWrite(conn_id);
    }

    void handleReadable(uint64_t conn_id)
    {
        auto cit = conns.find(conn_id);
        if (cit == conns.end())
            return;
        Conn &conn = cit->second;
        char buf[65536];
        for (;;) {
            const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                teardown(conn_id, util::names::kNetConnsClosedErrorTotal);
                return;
            }
            if (n == 0) {
                // Half-close: stop reading, still deliver what was
                // admitted, then close.  A client that disconnected
                // mid-request simply never gets its responses.
                conn.eofSeen = true;
                conn.readPaused = true;
                if (conn.outstanding == 0 && conn.ready.empty() &&
                    conn.outbuf.size() == conn.outoff) {
                    teardown(conn_id, util::names::kNetConnsClosedEofTotal);
                    return;
                }
                break;
            }
            counter(util::names::kNetBytesReadTotal).increment(uint64_t(n));
            conn.lastActivity = WallClock::now();
            conn.decoder.feed(buf, size_t(n));
            // One chunk per loop iteration keeps one firehose client
            // from starving the rest of the poll set.
            break;
        }
        extractFrames(conn_id);
    }

    void drainCompletions()
    {
        std::deque<Completion> batch;
        {
            std::lock_guard<std::mutex> lock(compMu);
            batch.swap(completions);
        }
        if (batch.empty())
            return;
        const WallClock::time_point now = WallClock::now();
        lastProgress = now;
        for (Completion &c : batch) {
            --inflight;
            reg->setGauge(util::names::kNetInflight, double(inflight));
            reg->histogram(util::names::kNetLatencyQueueWaitNs)
                .sample(c.queueWaitNs);
            reg->histogram(util::names::kNetLatencyHandlerNs).sample(c.handlerNs);
            reg->histogram(util::names::kNetLatencyRequestNs)
                .sample(obs::wallDeltaNs(c.admitted, now));
            if (c.result.failed)
                counter(util::names::kNetRequestsFailedTotal)++;
            if (c.result.telemetry)
                reg->mergeFrom(*c.result.telemetry);
            auto cit = conns.find(c.connId);
            if (cit == conns.end()) {
                // The client disconnected while its request ran.
                counter(util::names::kNetResponsesOrphanedTotal)++;
                continue;
            }
            Conn &conn = cit->second;
            --conn.outstanding;
            conn.ready[c.reqNo] = std::move(c.result.line);
            flushReady(conn);
            if (!attemptWrite(c.connId))
                maybeResumeRead(conn);
        }
    }

    void maybePrintStats()
    {
        if (params.statsIntervalResponses <= 0)
            return;
        if (responsesWritten %
                uint64_t(params.statsIntervalResponses) != 0)
            return;
        const obs::Log2Histogram &req =
            reg->histogram(util::names::kNetLatencyRequestNs);
        const obs::Log2Histogram &queue =
            reg->histogram(util::names::kNetLatencyQueueWaitNs);
        std::fprintf(
            stderr,
            "serve net stats: %llu responses (%llu admitted, %llu "
            "shed) — request p50/p90/p99 %.2f/%.2f/%.2f ms, queue "
            "%.2f/%.2f/%.2f ms\n",
            static_cast<unsigned long long>(responsesWritten),
            static_cast<unsigned long long>(
                counter(util::names::kNetRequestsAdmittedTotal).value()),
            static_cast<unsigned long long>(
                counter(util::names::kNetRequestsShedTotal).value()),
            req.percentile(0.50) / 1e6, req.percentile(0.90) / 1e6,
            req.percentile(0.99) / 1e6, queue.percentile(0.50) / 1e6,
            queue.percentile(0.90) / 1e6, queue.percentile(0.99) / 1e6);
    }

    void watchdogSnapshot(WallClock::time_point now)
    {
        counter(util::names::kNetWatchdogTripsTotal)++;
        std::fprintf(
            stderr,
            "serve watchdog: no request completed for %.0f ms with "
            "%zu in flight — %zu connections, %llu admitted, %llu "
            "shed, %llu responses\n",
            msSince(lastProgress, now), inflight, conns.size(),
            static_cast<unsigned long long>(
                counter(util::names::kNetRequestsAdmittedTotal).value()),
            static_cast<unsigned long long>(
                counter(util::names::kNetRequestsShedTotal).value()),
            static_cast<unsigned long long>(responsesWritten));
        lastProgress = now; // re-arm instead of spamming
    }

    void beginDrain()
    {
        if (draining)
            return;
        draining = true;
        drainStart = WallClock::now();
        if (tcpFd >= 0) {
            ::close(tcpFd);
            tcpFd = -1;
        }
        if (unixFd >= 0) {
            ::close(unixFd);
            unixFd = -1;
            ::unlink(params.unixPath.c_str());
        }
        // Connections stop being read; anything already admitted
        // completes and flushes.
        for (auto &[id, conn] : conns) {
            (void)id;
            conn.readPaused = true;
        }
        std::fprintf(stderr,
                     "serve: draining — %zu in flight, %zu "
                     "connections\n",
                     inflight, conns.size());
    }

    bool drainComplete() const
    {
        if (inflight != 0)
            return false;
        for (const auto &[id, conn] : conns) {
            (void)id;
            if (conn.outstanding != 0 || !conn.ready.empty() ||
                conn.outbuf.size() != conn.outoff)
                return false;
        }
        return true;
    }

    Status run()
    {
        if (!started) {
            return Status::error(ErrorCode::FailedPrecondition,
                                 "run() before start()");
        }
        lastProgress = WallClock::now();
        std::vector<pollfd> fds;
        std::vector<uint64_t> fdConn; // conn id per pollfd (0 = none)
        Status result = Status::okStatus();
        for (;;) {
            fds.clear();
            fdConn.clear();
            fds.push_back({wakeRead, POLLIN, 0});
            fdConn.push_back(0);
            if (tcpFd >= 0) {
                fds.push_back({tcpFd, POLLIN, 0});
                fdConn.push_back(0);
            }
            if (unixFd >= 0) {
                fds.push_back({unixFd, POLLIN, 0});
                fdConn.push_back(0);
            }
            for (auto &[id, conn] : conns) {
                short events = 0;
                if (!conn.readPaused)
                    events |= POLLIN;
                if (conn.outoff < conn.outbuf.size())
                    events |= POLLOUT;
                fds.push_back({conn.fd, events, 0});
                fdConn.push_back(id);
            }

            const int timeout_ms = pollTimeoutMs();
            const int rc = ::poll(fds.data(), nfds_t(fds.size()),
                                  timeout_ms);
            if (rc < 0 && errno != EINTR) {
                result = Status::error(ErrorCode::IoError, "poll: %s",
                                       strerror(errno));
                break;
            }
            const WallClock::time_point now = WallClock::now();

            // Wake pipe: worker completions and/or shutdown signals.
            if (rc > 0 && (fds[0].revents & POLLIN)) {
                char buf[256];
                while (::read(wakeRead, buf, sizeof(buf)) > 0) {
                }
            }
            const int signals =
                shutdownSignals.load(std::memory_order_relaxed);
            if (signals >= 2)
                break; // second signal: abandon the drain
            if (signals >= 1)
                beginDrain();

            drainCompletions();

            // Accept + per-connection IO, against a snapshot of the
            // pollfd set (handlers may erase connections).
            for (size_t i = 1; i < fds.size(); ++i) {
                if (fds[i].revents == 0)
                    continue;
                if (fdConn[i] == 0) {
                    if (fds[i].fd == tcpFd || fds[i].fd == unixFd)
                        acceptFrom(fds[i].fd);
                    continue;
                }
                const uint64_t id = fdConn[i];
                auto cit = conns.find(id);
                if (cit == conns.end() || cit->second.fd != fds[i].fd)
                    continue; // torn down earlier this iteration
                if (fds[i].revents & (POLLERR | POLLNVAL)) {
                    teardown(id, util::names::kNetConnsClosedErrorTotal);
                    continue;
                }
                if (fds[i].revents & POLLOUT) {
                    if (attemptWrite(id))
                        continue;
                }
                if (fds[i].revents & (POLLIN | POLLHUP))
                    handleReadable(id);
            }

            enforceTimeouts(now);

            if (draining) {
                if (drainComplete())
                    break;
                if (params.drainGraceMs > 0 &&
                    msSince(drainStart, now) >
                        double(params.drainGraceMs)) {
                    std::fprintf(stderr,
                                 "serve: drain grace of %d ms "
                                 "exceeded with %zu in flight — "
                                 "closing\n",
                                 params.drainGraceMs, inflight);
                    break;
                }
            }
        }

        // Close every remaining connection, stop the workers.
        for (auto &[id, conn] : conns) {
            (void)id;
            ::close(conn.fd);
        }
        conns.clear();
        reg->setGauge(util::names::kNetConnsActive, 0.0);
        stopWorkers();
        // Workers may have completed work after the loop exited.
        drainCompletions();
        closeFds();
        return result;
    }

    int pollTimeoutMs() const
    {
        // The nearest deadline decides how long poll may sleep; 1 s
        // bounds the wait so gauge/watchdog upkeep always runs.
        double next = 1000.0;
        const WallClock::time_point now = WallClock::now();
        auto consider = [&next](double remaining) {
            if (remaining < next)
                next = remaining < 0.0 ? 0.0 : remaining;
        };
        for (const auto &[id, conn] : conns) {
            (void)id;
            if (params.readTimeoutMs > 0 && conn.partialActive) {
                consider(double(params.readTimeoutMs) -
                         msSince(conn.partialSince, now));
            }
            if (params.idleTimeoutMs > 0 && !conn.partialActive &&
                conn.outstanding == 0) {
                consider(double(params.idleTimeoutMs) -
                         msSince(conn.lastActivity, now));
            }
        }
        if (params.watchdogMs > 0 && inflight > 0) {
            consider(double(params.watchdogMs) -
                     msSince(lastProgress, now));
        }
        if (draining && params.drainGraceMs > 0) {
            consider(double(params.drainGraceMs) -
                     msSince(drainStart, now));
        }
        return int(next) + 1;
    }

    void enforceTimeouts(WallClock::time_point now)
    {
        std::vector<uint64_t> lorises, idlers;
        for (const auto &[id, conn] : conns) {
            if (params.readTimeoutMs > 0 && conn.partialActive &&
                msSince(conn.partialSince, now) >
                    double(params.readTimeoutMs)) {
                lorises.push_back(id);
                continue;
            }
            // Covers both the keep-alive connection with nothing to
            // say and the stalled writer: a client that stops reading
            // freezes lastActivity (successful writes refresh it), so
            // pending output must NOT exempt a connection here.
            if (params.idleTimeoutMs > 0 && !conn.partialActive &&
                conn.outstanding == 0 &&
                msSince(conn.lastActivity, now) >
                    double(params.idleTimeoutMs)) {
                idlers.push_back(id);
            }
        }
        for (uint64_t id : lorises)
            teardown(id, util::names::kNetConnsClosedReadTimeoutTotal);
        for (uint64_t id : idlers)
            teardown(id, util::names::kNetConnsClosedIdleTotal);
        if (params.watchdogMs > 0 && inflight > 0 &&
            msSince(lastProgress, now) > double(params.watchdogMs))
            watchdogSnapshot(now);
    }
};

Listener::Listener(ListenerParams params)
    : impl_(std::make_unique<Impl>(std::move(params)))
{
}

Listener::~Listener()
{
    if (impl_->started && !impl_->workerThreads.empty())
        impl_->stopWorkers();
    impl_->closeFds();
}

util::Status
Listener::start()
{
    Status s = impl_->start();
    boundPort_ = impl_->boundPort;
    return s;
}

util::Status
Listener::run()
{
    return impl_->run();
}

void
Listener::requestShutdown()
{
    impl_->shutdownSignals.fetch_add(1, std::memory_order_relaxed);
    if (impl_->wakeWrite >= 0)
        impl_->wake();
}

obs::MetricRegistry &
Listener::registry()
{
    return impl_->reg ? *impl_->reg : impl_->ownedRegistry;
}

} // namespace lll::net
