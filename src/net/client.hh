/**
 * @file
 * A small blocking JSON-lines client for the socket front-end — the
 * shared plumbing under tests/test_net.cc, the `lll selftest` listener
 * fault scenarios and the bench-serve load generator's setup path.
 * Deliberately simple: one fd, blocking connect, poll-bounded reads.
 */

#ifndef LLL_NET_CLIENT_HH
#define LLL_NET_CLIENT_HH

#include <string>

#include "util/status.hh"

namespace lll::net
{

class BlockingClient
{
  public:
    BlockingClient() = default;
    ~BlockingClient();

    BlockingClient(BlockingClient &&other) noexcept;
    BlockingClient &operator=(BlockingClient &&other) noexcept;
    BlockingClient(const BlockingClient &) = delete;
    BlockingClient &operator=(const BlockingClient &) = delete;

    [[nodiscard]] static util::Result<BlockingClient> connectTcp(
        const std::string &host, int port);
    [[nodiscard]] static util::Result<BlockingClient> connectUnix(
        const std::string &path);

    /** Write all of @p data, retrying partial writes and EINTR. */
    [[nodiscard]] util::Status sendAll(const std::string &data);

    /**
     * One response line (without its newline).  Blocks up to
     * @p timeout_ms; DeadlineExceeded on timeout, IoError when the
     * server closes first.
     */
    [[nodiscard]] util::Result<std::string> recvLine(int timeout_ms);

    /** Half-close: no more writes, reads still work (drain tests). */
    void shutdownWrite();

    /** Abrupt close (mid-request disconnect scenarios). */
    void close();

    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

  private:
    explicit BlockingClient(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string rxbuf_;
};

} // namespace lll::net

#endif // LLL_NET_CLIENT_HH
