/**
 * @file
 * The socket front-end for the run service (DESIGN.md §14): a poll()
 * event loop multiplexing many persistent client connections onto a
 * bounded worker pool, with the overload posture the paper's own math
 * prescribes.  Little's Law applied to this server: the admission
 * bound fixes the in-flight population N, the latency histograms
 * measure W, and once the arrival rate λ exceeds N/W the excess is
 * *shed* — answered immediately with a structured `unavailable`
 * response — instead of queued into collapse.
 *
 * Robustness contract:
 *  - bounded in-flight admission (maxInflight) with structured
 *    shedding, never an unbounded queue;
 *  - per-connection fairness: at most maxPipelined of a connection's
 *    requests may occupy admission slots, and reads pause (TCP
 *    backpressure) once a connection reaches the cap;
 *  - slow clients: per-connection output buffers are bounded — reads
 *    pause at half the cap, the connection is closed at the cap — so
 *    a client that never reads responses cannot grow server memory;
 *  - idle and read (slow-loris) timeouts close dead connections; a
 *    forward-progress watchdog reports a wedged worker pool;
 *  - EINTR/partial-write/SIGPIPE hardened (all socket writes use
 *    MSG_NOSIGNAL);
 *  - drain-on-shutdown: requestShutdown() (wired to SIGTERM/SIGINT by
 *    the CLI) stops accepting, finishes every admitted request,
 *    flushes responses, then returns from run().
 *
 * Responses go out in per-connection request order, so a pipelining
 * client can match responses positionally; admitted responses are
 * byte-identical to the `lll serve --batch` stdin path.
 */

#ifndef LLL_NET_LISTENER_HH
#define LLL_NET_LISTENER_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "util/status.hh"

namespace lll::net
{

/** What a worker produced for one admitted request. */
struct HandlerResult
{
    std::string line;   //!< rendered response (no trailing newline)
    bool failed = false; //!< the request's own status was an error
    /** Worker-private telemetry, merged into the listener registry on
     *  the event-loop thread (the registry is not thread-safe). */
    std::unique_ptr<obs::MetricRegistry> telemetry;
};

/**
 * The request handler, invoked on worker threads — must be callable
 * concurrently.  @p req_no is the 1-based request number within its
 * connection (default ids and error context count from it).
 */
using Handler =
    std::function<HandlerResult(const std::string &line, uint64_t req_no)>;

struct ListenerParams
{
    /** TCP bind address; port < 0 disables TCP, port 0 binds an
     *  ephemeral port readable via Listener::tcpPort(). */
    std::string tcpHost = "127.0.0.1";
    int tcpPort = -1;

    /** Unix-domain socket path; empty disables.  An existing socket
     *  file at the path is replaced. */
    std::string unixPath;

    /** Worker threads executing admitted requests. */
    int workers = 1;

    /** Admission bound: requests in flight (queued on the worker pool
     *  or executing) across all connections.  Arrivals beyond it are
     *  shed with `unavailable`. */
    size_t maxInflight = 8;

    /** Per-connection cap on admitted-but-unanswered requests; at the
     *  cap the connection's reads pause (TCP backpressure) so one
     *  pipelining client cannot monopolize admission slots. */
    size_t maxPipelined = 4;

    /** Concurrent connection cap; excess accepts are closed. */
    size_t maxConns = 256;

    /** Largest accepted request frame (see FrameDecoder). */
    size_t maxFrameBytes = 1u << 20;

    /** Per-connection output buffer cap in bytes: reads pause at half
     *  of it, the connection is closed (overflow) when it is hit. */
    size_t maxWriteBuffer = 4u << 20;

    /** Close a connection idle (no buffered partial frame, nothing in
     *  flight or unflushed) for this long.  <= 0 disables. */
    int idleTimeoutMs = 30000;

    /** Close a connection whose frame stays incomplete this long —
     *  the slow-loris guard.  <= 0 disables. */
    int readTimeoutMs = 10000;

    /** Forward-progress watchdog: with admitted work in flight but no
     *  completion for this long, dump a diagnostic snapshot to stderr
     *  and count net.watchdog_trips_total.  <= 0 disables. */
    int watchdogMs = 60000;

    /** Drain deadline after requestShutdown(): connections still
     *  unflushed past it are closed anyway.  <= 0 waits forever. */
    int drainGraceMs = 5000;

    /** Print a cumulative latency stat line to stderr every N
     *  responses (0 disables). */
    int statsIntervalResponses = 0;

    /** Required: the request handler (see ServeHandler). */
    Handler handler;

    /** Receives net.* counters, latency histograms and the telemetry
     *  merged from workers; nullptr uses an internal registry.  Only
     *  the event-loop thread touches it until run() returns. */
    obs::MetricRegistry *registry = nullptr;
};

class Listener
{
  public:
    explicit Listener(ListenerParams params);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Bind + listen on the configured endpoints and start the worker
     *  pool.  Fails without binding anything on a bad endpoint. */
    [[nodiscard]] util::Status start();

    /**
     * The event loop.  Blocks until requestShutdown() completes a
     * drain (finish admitted work, flush responses).  Returns the
     * first fatal listener error, or OK after a clean drain.
     */
    [[nodiscard]] util::Status run();

    /**
     * Begin drain-and-exit.  Async-signal-safe (one pipe write), so
     * the CLI wires SIGTERM/SIGINT straight to it; callable from any
     * thread.  A second call abandons the drain and exits now.
     */
    void requestShutdown();

    /** The bound TCP port after start() (0 when TCP is disabled). */
    int tcpPort() const { return boundPort_; }

    /** The registry in use (the internal one when params.registry was
     *  null).  Read it only after run() returns. */
    obs::MetricRegistry &registry();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    int boundPort_ = 0;
};

/** "HOST:PORT" → (host, port); InvalidArgument on anything else. */
[[nodiscard]] util::Status parseHostPort(const std::string &addr, std::string *host,
                           int *port);

} // namespace lll::net

#endif // LLL_NET_LISTENER_HH
