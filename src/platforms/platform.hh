/**
 * @file
 * Platform descriptions: the three processors of paper Table III plus
 * the vendor taxonomy of paper Table I.
 *
 * A Platform couples the marketing-level facts the paper tabulates
 * (cores, peak bandwidth, L1/L2 MSHRs per core) with a calibrated
 * SystemParams prototype for the simulator.  Calibration targets the
 * paper's implied idle and loaded latencies; see DESIGN.md §5.
 */

#ifndef LLL_PLATFORMS_PLATFORM_HH
#define LLL_PLATFORMS_PLATFORM_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "util/status.hh"

namespace lll::platforms
{

/** Processor vendor, for the counter-visibility matrix (paper Table I). */
enum class Vendor
{
    Intel,
    Amd,
    Cavium,
    Fujitsu,
};

const char *vendorName(Vendor v);

/**
 * One processor: paper-level metadata plus a simulator configuration.
 */
struct Platform
{
    std::string name;        //!< short id: "skl", "knl", "a64fx"
    std::string description; //!< e.g. "Xeon Platinum 8160 (SKL)"
    Vendor vendor = Vendor::Intel;
    std::string isa = "x86-64";
    std::string memoryTech = "DDR4";

    int totalCores = 1;
    unsigned maxSmtWays = 1;
    double freqGHz = 2.0;
    double peakGBs = 100.0;
    double peakGFlops = 1000.0;  //!< DP peak (roofline horizontal)
    unsigned lineBytes = 64;
    unsigned l1Mshrs = 10;
    unsigned l2Mshrs = 16;
    unsigned vectorLanes = 8;   //!< doubles per SIMD vector

    /** Prototype simulator parameters (cores/threads overridden below). */
    sim::SystemParams proto;

    /**
     * Build simulator parameters for a run using @p cores_used cores and
     * @p threads_per_core SMT ways; FailedPrecondition when either is
     * outside this platform's range.
     */
    [[nodiscard]] util::Result<sim::SystemParams>
    trySysParams(int cores_used, unsigned threads_per_core) const;

    /** Legacy convenience wrapper: asserts instead of returning the
     *  error (callers that already validated their inputs). */
    sim::SystemParams
    sysParams(int cores_used, unsigned threads_per_core) const;

    /** Default core count for loaded runs (paper: all usable cores). */
    int defaultCores() const { return totalCores; }

    /**
     * Calibration id: @ref name up to the first '~'.  Design-space
     * candidates derived from a stock platform are named
     * "<base>~<assignment>" (search::applyAssignment); workload tuning
     * keys on the base platform the candidate was derived from.
     */
    std::string baseName() const { return name.substr(0, name.find('~')); }
};

/**
 * Check a platform description end to end: the paper-level metadata
 * (cores, MSHR sizes, peak bandwidth) and the simulator prototype via
 * sim::validateSystemParams, including cross-consistency between the
 * two layers (line size and peak bandwidth must agree).
 */
[[nodiscard]] util::Status validatePlatform(const Platform &platform);

/** Intel Xeon Platinum 8160 "Skylake" (paper Table III row 1). */
Platform skl();

/** Intel Xeon Phi 7250 "Knights Landing", flat MCDRAM (row 2). */
Platform knl();

/** Fujitsu A64FX with HBM2 (row 3). */
Platform a64fx();

/** The three experiment platforms, in paper order. */
std::vector<Platform> allPlatforms();

/** Look up by short id ("skl", "knl", "a64fx"); NotFound if unknown. */
[[nodiscard]] util::Result<Platform> findPlatform(const std::string &name);

} // namespace lll::platforms

#endif // LLL_PLATFORMS_PLATFORM_HH
