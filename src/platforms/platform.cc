#include "platforms/platform.hh"

#include <cmath>

#include "sim/validator.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace lll::platforms
{

const char *
vendorName(Vendor v)
{
    switch (v) {
      case Vendor::Intel:   return "Intel";
      case Vendor::Amd:     return "AMD";
      case Vendor::Cavium:  return "Cavium";
      case Vendor::Fujitsu: return "Fujitsu";
    }
    return "?";
}

util::Result<sim::SystemParams>
Platform::trySysParams(int cores_used, unsigned threads_per_core) const
{
    if (cores_used < 1 || cores_used > totalCores) {
        return util::Status::error(
            util::ErrorCode::FailedPrecondition,
            "%s: cores_used %d out of range (1..%d)", name.c_str(),
            cores_used, totalCores);
    }
    if (threads_per_core < 1 || threads_per_core > maxSmtWays) {
        return util::Status::error(
            util::ErrorCode::FailedPrecondition,
            "%s: %u SMT ways unsupported (max %u)", name.c_str(),
            threads_per_core, maxSmtWays);
    }
    sim::SystemParams sp = proto;
    sp.cores = cores_used;
    sp.threadsPerCore = threads_per_core;
    return sp;
}

sim::SystemParams
Platform::sysParams(int cores_used, unsigned threads_per_core) const
{
    util::Result<sim::SystemParams> sp =
        trySysParams(cores_used, threads_per_core);
    lll_assert(sp.ok(), "%s", sp.status().toString().c_str());
    return sp.take();
}

util::Status
validatePlatform(const Platform &platform)
{
    using util::ErrorCode;
    using util::Status;
    if (platform.name.empty())
        return Status::error(ErrorCode::FailedPrecondition,
                             "platform needs a name");
    auto ctx = [&](const Status &s) {
        return s.withContext("platform '%s'", platform.name.c_str());
    };
    if (platform.totalCores < 1)
        return ctx(Status::error(ErrorCode::FailedPrecondition,
                                 "totalCores must be >= 1 (got %d)",
                                 platform.totalCores));
    if (platform.maxSmtWays < 1 || platform.maxSmtWays > 4)
        return ctx(Status::error(ErrorCode::FailedPrecondition,
                                 "maxSmtWays (%u) outside 1..4",
                                 platform.maxSmtWays));
    if (!(platform.peakGBs > 0.0) || !(platform.peakGFlops > 0.0))
        return ctx(Status::error(ErrorCode::FailedPrecondition,
                                 "peak bandwidth/flops must be positive "
                                 "(got %g GB/s, %g GFlop/s)",
                                 platform.peakGBs, platform.peakGFlops));
    if (platform.l1Mshrs == 0 || platform.l2Mshrs == 0)
        return ctx(Status::error(ErrorCode::FailedPrecondition,
                                 "L1/L2 MSHR counts must be >= 1 "
                                 "(got %u/%u)",
                                 platform.l1Mshrs, platform.l2Mshrs));
    if (platform.vectorLanes == 0)
        return ctx(Status::error(ErrorCode::FailedPrecondition,
                                 "vectorLanes must be >= 1"));

    // Cross-layer consistency: the analysis layer divides by the
    // platform-level line size and peak, so the simulator prototype
    // must describe the same machine.
    if (platform.proto.lineBytes != platform.lineBytes)
        return ctx(Status::error(ErrorCode::FailedPrecondition,
                                 "line size disagrees between metadata "
                                 "(%u B) and simulator prototype (%u B)",
                                 platform.lineBytes,
                                 platform.proto.lineBytes));
    if (std::abs(platform.proto.mem.peakGBs - platform.peakGBs) >
        0.01 * platform.peakGBs) {
        return ctx(Status::error(ErrorCode::FailedPrecondition,
                                 "peak bandwidth disagrees between "
                                 "metadata (%g GB/s) and memory "
                                 "controller (%g GB/s)",
                                 platform.peakGBs,
                                 platform.proto.mem.peakGBs));
    }

    util::Result<sim::SystemParams> sp =
        platform.trySysParams(platform.totalCores, 1);
    if (!sp.ok())
        return sp.status();
    Status proto_ok = sim::validateSystemParams(*sp);
    if (!proto_ok.ok())
        return ctx(proto_ok.withContext("simulator prototype"));
    return Status::okStatus();
}

namespace
{

/** Convert a latency in core cycles to ticks. */
Tick
cyclesToTicks(double cycles, double freq_ghz)
{
    return nsToTicks(cycles / freq_ghz);
}

} // namespace

Platform
skl()
{
    Platform p;
    p.name = "skl";
    p.description = "Xeon Platinum 8160 (SKL)";
    p.vendor = Vendor::Intel;
    p.isa = "x86-64 (AVX-512)";
    p.memoryTech = "DDR4-2666 x6";
    p.totalCores = 24;
    p.maxSmtWays = 2;
    p.freqGHz = 2.1;
    p.peakGBs = 128.0;
    p.peakGFlops = 1612.8;   // 24c x 2.1 GHz x 32 DP flops/cycle
    p.lineBytes = 64;
    p.l1Mshrs = 10;     // [34] in the paper
    p.l2Mshrs = 16;     // [34]
    p.vectorLanes = 8;

    sim::SystemParams &s = p.proto;
    s.name = p.name;
    s.freqGHz = p.freqGHz;
    s.lineBytes = p.lineBytes;
    s.lqSize = 72;
    // Strong OoO: one thread nearly fills the core; the second adds
    // modest throughput (CoMD's 1.22x from 2-way HT).
    s.smtCapacity = {0.0, 0.85, 1.02, 0.0, 0.0};

    s.l1.name = "l1";
    s.l1.sets = 64;
    s.l1.ways = 8;               // 32 KiB of 64 B lines
    s.l1.accessLat = cyclesToTicks(4, p.freqGHz);
    s.l1.mshrs = p.l1Mshrs;

    s.l2.name = "l2";
    s.l2.sets = 1024;
    s.l2.ways = 16;              // 1 MiB
    s.l2.accessLat = cyclesToTicks(14, p.freqGHz);
    s.l2.mshrs = p.l2Mshrs;

    s.hasL3 = true;
    s.l3.name = "l3";
    s.l3.sets = 32768;
    s.l3.ways = 16;              // 32 MiB shared
    s.l3.accessLat = nsToTicks(14.0);
    // Uncore trackers bound the socket's total outstanding misses; this
    // is what caps loaded latency near 170 ns at saturation (paper's
    // X-Mem profile for SKL) instead of letting queues grow without
    // bound.
    s.l3.mshrs = 288;
    s.l3.prefetchReserve = 4;
    s.l3.hashedSets = true;

    s.pf.tableSize = 16;
    s.pf.distance = 48;
    s.pf.degree = 4;

    s.mem.name = "ddr4";
    s.mem.peakGBs = p.peakGBs;
    s.mem.frontLatencyNs = 25.0;
    s.mem.bankServiceNs = 28.0;
    s.mem.backLatencyNs = 4.0;
    return p;
}

Platform
knl()
{
    Platform p;
    p.name = "knl";
    p.description = "Xeon Phi 7250 (KNL)";
    p.vendor = Vendor::Intel;
    p.isa = "x86-64 (AVX-512)";
    p.memoryTech = "MCDRAM (flat)";
    // 68 physical cores; the paper uses 64 for partitioning and OS room.
    p.totalCores = 64;
    p.maxSmtWays = 4;
    p.freqGHz = 1.4;
    p.peakGBs = 400.0;
    p.peakGFlops = 2867.2;   // 64c x 1.4 GHz x 32 (paper Fig. 2)
    p.lineBytes = 64;
    p.l1Mshrs = 12;     // [35]
    p.l2Mshrs = 32;     // [36]
    p.vectorLanes = 8;

    sim::SystemParams &s = p.proto;
    s.name = p.name;
    s.freqGHz = p.freqGHz;
    s.lineBytes = p.lineBytes;
    s.lqSize = 48;
    // Weak 2-wide core: a single thread leaves most issue slots idle,
    // which is exactly why 2- and 4-way SMT pay off on KNL.  The curve
    // is calibrated to CoMD's compute-bound SMT gains (1.52x, then
    // 1.25x).
    s.smtCapacity = {0.0, 0.42, 0.64, 0.72, 0.80};

    s.l1.name = "l1";
    s.l1.sets = 64;
    s.l1.ways = 8;
    s.l1.accessLat = cyclesToTicks(4, p.freqGHz);
    s.l1.mshrs = p.l1Mshrs;

    s.l2.name = "l2";
    s.l2.sets = 512;
    s.l2.ways = 16;              // 512 KiB per core (1 MiB per 2-core tile)
    s.l2.accessLat = cyclesToTicks(17, p.freqGHz);
    // The nominal 32 MSHRs sit on a tile shared by two cores, so one
    // core can sustain about 20 outstanding L2 misses in practice —
    // which is exactly where the paper's most-optimized ISx lands
    // (n_avg = 20 of the nominal 32).  The analysis layer keeps using
    // the nominal per-core figure from Table III.
    s.l2.mshrs = 20;

    s.hasL3 = false;

    s.pf.tableSize = 16;         // "the L2 hardware prefetcher can track
    s.pf.distance = 32;          //  only 16 prefetch streams" [39]
    s.pf.degree = 2;

    s.mem.name = "mcdram";
    s.mem.peakGBs = p.peakGBs;
    s.mem.frontLatencyNs = 115.0;
    s.mem.bankServiceNs = 32.0;
    s.mem.backLatencyNs = 6.0;
    return p;
}

Platform
a64fx()
{
    Platform p;
    p.name = "a64fx";
    p.description = "Fujitsu A64FX";
    p.vendor = Vendor::Fujitsu;
    p.isa = "AArch64 (SVE 512)";
    p.memoryTech = "HBM2";
    p.totalCores = 48;
    p.maxSmtWays = 1;            // A64FX does not support SMT
    p.freqGHz = 1.8;
    p.peakGBs = 1024.0;
    p.peakGFlops = 2764.8;   // 48c x 1.8 GHz x 32
    p.lineBytes = 256;
    p.l1Mshrs = 12;     // [23]
    p.l2Mshrs = 20;     // ~20 [23]
    p.vectorLanes = 8;

    sim::SystemParams &s = p.proto;
    s.name = p.name;
    s.freqGHz = p.freqGHz;
    s.lineBytes = p.lineBytes;
    s.lqSize = 40;
    s.smtCapacity = {0.0, 0.55, 0.0, 0.0, 0.0};   // no SMT on A64FX

    s.l1.name = "l1";
    s.l1.sets = 64;
    s.l1.ways = 4;               // 64 KiB of 256 B lines
    s.l1.accessLat = cyclesToTicks(5, p.freqGHz);
    s.l1.mshrs = p.l1Mshrs;

    s.l2.name = "l2";
    s.l2.sets = 128;
    s.l2.ways = 16;              // ~0.5 MiB per-core share of the CMG L2
    s.l2.accessLat = cyclesToTicks(37, p.freqGHz);
    s.l2.mshrs = p.l2Mshrs;

    s.hasL3 = false;

    s.pf.tableSize = 16;
    s.pf.distance = 24;
    s.pf.degree = 2;

    s.mem.name = "hbm2";
    s.mem.peakGBs = p.peakGBs;
    s.mem.frontLatencyNs = 49.0;
    s.mem.bankServiceNs = 64.0;
    s.mem.backLatencyNs = 5.0;
    return p;
}

std::vector<Platform>
allPlatforms()
{
    return {skl(), knl(), a64fx()};
}

util::Result<Platform>
findPlatform(const std::string &name)
{
    for (Platform &p : allPlatforms()) {
        if (p.name == name)
            return std::move(p);
    }
    return util::Status::error(
        util::ErrorCode::NotFound,
        "unknown platform '%s' (expected skl, knl or a64fx)", name.c_str());
}

} // namespace lll::platforms
