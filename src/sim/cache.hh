/**
 * @file
 * Set-associative, write-back, write-allocate cache with an MSHR queue.
 *
 * The same class models L1, L2 and the optional shared LLC; what differs
 * is geometry, latency, MSHR capacity and whether a stream prefetcher is
 * attached (L2 only, matching the paper's observation that the L2
 * prefetcher is the aggressive, useful one).
 *
 * Miss flow: a demand op that misses allocates an MSHR and sends a fill
 * request downstream; further ops to the same line coalesce onto the MSHR.
 * When the MSHR queue is full the access is refused and the issuer must
 * retry — these refusals are the "MSHRQ-full stalls" the paper's Table I
 * laments most processors cannot expose.
 */

#ifndef LLL_SIM_CACHE_HH
#define LLL_SIM_CACHE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/mem_level.hh"
#include "sim/mshr_queue.hh"
#include "sim/request.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace lll::sim
{

class StreamPrefetcher;
class ThreadContext;

/** Result of presenting a prefetch to a cache. */
enum class PrefetchOutcome
{
    Started,    //!< fill in flight
    Covered,    //!< line already resident or already being fetched
    Deferred,   //!< queued; will start when an MSHR frees
    Dropped,    //!< no capacity anywhere; the line was not requested
};

/**
 * A cache level.
 */
class Cache : public MemLevel
{
  public:
    struct Params
    {
        std::string name = "cache";
        int level = 1;              //!< 1, 2 or 3 (diagnostics only)
        unsigned sets = 64;         //!< power of two
        unsigned ways = 8;
        Tick accessLat = 1000;      //!< lookup + downstream forward latency
        unsigned mshrs = 10;        //!< 0 = unbounded (shared LLC)
        /** Prefetch allocations keep at least this many MSHRs free for
         *  demand traffic (prefetches are deferred otherwise). */
        unsigned prefetchReserve = 1;

        /** Capacity of the deferred-prefetch queue (the streamer's own
         *  request buffer); 0 disables deferral. */
        unsigned prefetchQueue = 16;

        /** Hash the set index (shared LLCs use hashed indexing to spread
         *  correlated streams; L1/L2 use plain low bits). */
        bool hashedSets = false;

        /** Unique component id ordering this cache's same-tick events
         *  against other components' (see SchedBand); assigned by
         *  System, 0 for standalone test caches. */
        unsigned schedActor = 0;
    };

    struct CacheStats
    {
        Counter demandHits;
        Counter demandMisses;
        Counter demandMshrHits;     //!< demand coalesced onto in-flight line
        Counter prefetchFills;      //!< lines installed by any prefetch
        Counter prefetchUseful;     //!< demand hit on a prefetched line
        Counter prefetchDropped;    //!< prefetch refused (MSHRs scarce/dup)
        Counter writebacksOut;      //!< dirty evictions sent downstream
        Counter fills;

        void reset();
    };

    Cache(const Params &params, EventQueue &eq, RequestPool &pool);

    /** Wire the next level down (must be called before use). */
    void setDownstream(MemLevel *down) { down_ = down; }

    /**
     * If the next level down is also a cache, note it so prefetches can
     * be redirected there under MSHR pressure (the LLC-prefetch mode of
     * Intel's L2 streamer).
     */
    void setDownstreamCache(Cache *down) { downCache_ = down; }

    /** Attach a stream prefetcher (L2 use); observed on demand arrivals. */
    void setPrefetcher(StreamPrefetcher *pf) { prefetcher_ = pf; }

    // MemLevel interface
    bool tryAccess(MemRequest *req) override;
    void addRetryWaiter(EventFn cb) override;

    /**
     * Non-blocking prefetch insertion (software or hardware).  Under MSHR
     * pressure the prefetch is chained to the next cache level (Intel's
     * LLC-prefetch demotion) or deferred to this cache's prefetch queue,
     * which is served with priority as MSHRs free — that priority is what
     * lets a trained prefetcher overtake a flood of demand misses.
     */
    PrefetchOutcome tryPrefetch(uint64_t lineAddr, ReqType type, int core,
                                int thread);

    /** Response from downstream with the line for @p fillReq. */
    void handleFill(MemRequest *fillReq);

    const MshrQueue &mshrs() const { return mshrs_; }
    const CacheStats &stats() const { return stats_; }
    const Params &params() const { return params_; }
    unsigned schedActor() const { return params_.schedActor; }

    /**
     * Publish hit/miss/prefetch counters under @p prefix (export-time
     * snapshots; the MSHR queue registers its own sampled metrics).
     */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix,
                         std::vector<std::string> &names) const;

    /** True if @p lineAddr is currently resident (test aid). */
    bool isResident(uint64_t lineAddr) const;

    void resetStats(Tick now);

  private:
    struct Line
    {
        uint64_t lineAddr = 0;
        uint64_t lastUsed = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
    };

    unsigned setIndex(uint64_t lineAddr) const;
    Line *lookup(uint64_t lineAddr);

    /**
     * Install @p lineAddr, evicting the LRU victim (dirty victims emit a
     * writeback downstream).  Returns the installed line.
     */
    Line *insert(uint64_t lineAddr, bool dirty, bool prefetched);

    /** Send a fill request downstream, honouring backpressure. */
    void sendDownstream(MemRequest *fillReq);
    void drainPending();

    /** Complete every target parked on @p mshr at the current tick. */
    void completeTargets(Mshr *mshr);

    void notifyRetryWaiters();

    Params params_;
    EventQueue &eq_;
    RequestPool &pool_;
    MemLevel *down_ = nullptr;
    Cache *downCache_ = nullptr;
    StreamPrefetcher *prefetcher_ = nullptr;

    std::vector<Line> lines_;
    uint64_t useClock_ = 0;

    MshrQueue mshrs_;
    CacheStats stats_;

    /** Fill requests accepted locally but refused downstream. */
    std::deque<MemRequest *> pendingDown_;
    bool retryRegistered_ = false;

    struct PendingPrefetch
    {
        uint64_t lineAddr;
        ReqType type;
        int core;
        int thread;
    };

    /** Start a prefetch fill; the caller checked capacity. */
    void startPrefetch(uint64_t lineAddr, ReqType type, int core,
                       int thread);
    void servePendingPrefetches();

    std::deque<PendingPrefetch> deferredPf_;

    std::vector<EventFn> retryWaiters_;
};

/**
 * Priority for delivering a fill of @p lineAddr into @p cache: fills to
 * different caches order by component, same-tick fills into one cache
 * order by (mixed) line address, so LRU state never depends on pop
 * order.  Two fills for one line cannot coexist (one MSHR per line).
 */
inline uint64_t
fillPrio(const Cache &cache, uint64_t lineAddr)
{
    return schedPrio(SchedBand::Fill,
                     (static_cast<uint64_t>(cache.schedActor()) << 44) |
                         (schedMix64(lineAddr) >> 20));
}

/**
 * Priority for moving a miss of @p lineAddr from @p cache downstream on
 * behalf of (@p core, @p thread): ordered by component, then requesting
 * thread (fixed arbitration for downstream MSHRs and controller banks),
 * then line address.
 */
inline uint64_t
sendPrio(const Cache &cache, int core, int thread, uint64_t lineAddr)
{
    return schedPrio(
        SchedBand::Send,
        (static_cast<uint64_t>(cache.schedActor()) << 44) |
            ((schedThreadKey(core, thread) & 0xfff) << 32) |
            (schedMix64(lineAddr) >> 32));
}

} // namespace lll::sim

#endif // LLL_SIM_CACHE_HH
