#include "sim/stream_prefetcher.hh"

#include <cstdlib>

#include "sim/cache.hh"
#include "util/logging.hh"

namespace lll::sim
{

StreamPrefetcher::StreamPrefetcher(const Params &params, Cache &owner)
    : params_(params), owner_(owner), table_(params.tableSize)
{
    lll_assert(params_.tableSize > 0, "prefetcher needs a non-empty table");
    lll_assert(params_.distance >= 1, "prefetch distance must be >= 1");
}

void
StreamPrefetcher::observe(uint64_t lineAddr, int core)
{
    ++stats_.triggers;

    // Find a tracked stream whose head is near this access.
    Stream *match = nullptr;
    for (Stream &s : table_) {
        if (!s.valid)
            continue;
        int64_t delta = static_cast<int64_t>(lineAddr) -
                        static_cast<int64_t>(s.head);
        if (delta != 0 &&
            std::llabs(delta) <= static_cast<int64_t>(params_.matchWindow)) {
            match = &s;
            match->dir = delta > 0 ? 1 : -1;
            break;
        }
        if (delta == 0) {
            // Re-touch of the head (e.g. a coalesced miss); just refresh.
            s.lastUsed = ++useClock_;
            return;
        }
    }

    if (match == nullptr) {
        // Allocate a new candidate stream.  Prefer invalid entries, then
        // the least-confident, then LRU — trained streams that keep
        // hitting stay protected.  With more live streams than table
        // entries (e.g. 4-way SMT on KNL), a stable majority of streams
        // remains covered while the rest churn, instead of the whole
        // table thrashing; on random access patterns this path dominates
        // and no entry ever trains, so nothing is prefetched.
        Stream *victim = &table_[0];
        for (Stream &s : table_) {
            if (!s.valid) {
                victim = &s;
                break;
            }
            if (s.confidence < victim->confidence ||
                (s.confidence == victim->confidence &&
                 s.lastUsed < victim->lastUsed)) {
                victim = &s;
            }
        }
        ++stats_.allocations;
        victim->valid = true;
        victim->head = lineAddr;
        victim->issuedUpTo = lineAddr;
        victim->dir = 1;
        victim->confidence = 0;
        victim->lastUsed = ++useClock_;
        return;
    }

    match->head = lineAddr;
    match->lastUsed = ++useClock_;
    if (match->confidence < params_.trainThreshold) {
        ++match->confidence;
        match->issuedUpTo = lineAddr;
        if (match->confidence < params_.trainThreshold)
            return;
    }

    // Confirmed stream: run up to `distance` lines ahead of the demand
    // head, at most `degree` prefetches per trigger.
    uint64_t target = lineAddr + static_cast<uint64_t>(match->dir) *
                                     params_.distance;
    unsigned budget = params_.degree;
    while (budget > 0) {
        int64_t gap = (static_cast<int64_t>(target) -
                       static_cast<int64_t>(match->issuedUpTo)) * match->dir;
        if (gap <= 0)
            break;
        uint64_t next = match->issuedUpTo + match->dir;
        PrefetchOutcome out =
            owner_.tryPrefetch(next, ReqType::HwPrefetch, core, 0);
        if (out == PrefetchOutcome::Dropped) {
            // No capacity anywhere; stop and retry from the same point
            // on the next trigger instead of skipping lines.
            break;
        }
        if (out != PrefetchOutcome::Covered)
            ++stats_.issued;
        LLL_DEBUG(prefetch, "stream pf line %llu dir %d (%s)",
                  static_cast<unsigned long long>(next), match->dir,
                  out == PrefetchOutcome::Covered ? "covered" : "issued");
        match->issuedUpTo = next;
        --budget;
    }
}

} // namespace lll::sim
