#include "sim/core_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace lll::sim
{

CoreModel::CoreModel(const Params &params, EventQueue &eq)
    : params_(params), eq_(eq)
{
    lll_assert(params_.freqGHz > 0, "core frequency must be positive");
    lll_assert(params_.threads >= 1 && params_.threads <= 4,
               "1..4 hardware threads supported");
    period_ = static_cast<Tick>(1000.0 / params_.freqGHz + 0.5);
    threadGate_.assign(params_.threads, 0);

    // Fill unset capacity entries from the previous way.
    double last = 0.0;
    std::array<double, 5> cap = params_.smtCapacity;
    for (unsigned k = 1; k < cap.size(); ++k) {
        if (cap[k] <= 0.0)
            cap[k] = last;
        last = cap[k];
    }
    singleThreadRate_ = cap[1];
    capacity_ = cap[params_.threads];
    lll_assert(singleThreadRate_ > 0.0 && capacity_ > 0.0,
               "core capacities must be positive");
}

void
CoreModel::compute(unsigned thread, double cycles, EventFn done)
{
    lll_assert(thread < threadGate_.size(), "bad thread id %u", thread);
    const Tick now = eq_.now();

    const uint64_t prio =
        schedPrio(SchedBand::Thread, schedThreadKey(params_.id,
                                                    static_cast<int>(thread)));
    if (cycles <= 0.0) {
        eq_.schedule(now, prio, std::move(done));
        return;
    }

    // Aggregate capacity: the shared server serializes all threads' work
    // at the configured SMT level's throughput.
    Tick server_ticks = static_cast<Tick>(
        cycles / capacity_ * static_cast<double>(period_) + 0.5);
    Tick server_start = std::max(now, serverFreeAt_);
    serverFreeAt_ = server_start + server_ticks;
    busyTicks_ += server_ticks;
    stallTicks_ += server_start - now;

    // Per-thread pipeline: the same work takes longer through one
    // thread's dependence chain.
    Tick thread_ticks = static_cast<Tick>(
        cycles / singleThreadRate_ * static_cast<double>(period_) + 0.5);
    Tick thread_start = std::max(now, threadGate_[thread]);
    threadGate_[thread] = thread_start + thread_ticks;

    Tick done_at = std::max(serverFreeAt_, threadGate_[thread]);
    eq_.schedule(done_at, prio, std::move(done));
}

void
CoreModel::resetStats()
{
    busyTicks_ = 0;
    stallTicks_ = 0;
}

void
CoreModel::registerMetrics(obs::MetricRegistry &reg,
                           const std::string &prefix,
                           std::vector<std::string> &names) const
{
    auto add = [&](const char *suffix, obs::GaugeMetric::Reader reader,
                   obs::GaugeMode mode, bool sampled) {
        std::string name = prefix + suffix;
        obs::MetricRegistry::GaugeOptions opt;
        opt.sampled = sampled;
        // Rate gauges publish ticks per nanosecond; dividing by
        // ticksPerNs turns that into a 0..1 fraction of wall time.
        opt.scale = mode == obs::GaugeMode::Rate
                        ? 1.0 / static_cast<double>(ticksPerNs)
                        : 1.0;
        reg.registerGauge(name, std::move(reader), mode, opt);
        names.push_back(std::move(name));
    };
    add(".busy_ticks",
        [this] { return static_cast<double>(busyTicks_); },
        obs::GaugeMode::Callback, false);
    add(".stall_ticks",
        [this] { return static_cast<double>(stallTicks_); },
        obs::GaugeMode::Callback, false);
    add(".busy_frac",
        [this] { return static_cast<double>(busyTicks_); },
        obs::GaugeMode::Rate, true);
    add(".stall_frac",
        [this] { return static_cast<double>(stallTicks_); },
        obs::GaugeMode::Rate, true);
}

} // namespace lll::sim
