/**
 * @file
 * Whole-node assembly: cores, private L1/L2 (+ optional shared LLC), the
 * L2 stream prefetchers and the memory controller, plus run control with
 * warmup/measurement windows.
 *
 * A System executes one KernelSpec across its cores/threads — modelling
 * the paper's methodology of profiling one routine at a time on a loaded
 * node ("the data must be collected in a loaded run", §III-D).
 */

#ifndef LLL_SIM_SYSTEM_HH
#define LLL_SIM_SYSTEM_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "util/status.hh"
#include "sim/cache.hh"
#include "sim/core_model.hh"
#include "sim/event_queue.hh"
#include "sim/kernel_spec.hh"
#include "sim/mem_ctrl.hh"
#include "sim/request.hh"
#include "sim/stream_prefetcher.hh"
#include "sim/thread_context.hh"

namespace lll::sim
{

/**
 * Forward-progress watchdog knobs (see System::runChecked).
 *
 * Every cadence of simulated time the watchdog counts the events the
 * queue processed since its last check, nets out its own housekeeping
 * (the watchdog and sampler events), and records a strike when nothing
 * real ran.  maxStrikes consecutive strikes abort the run with a
 * diagnostic snapshot — the "simulation is wedged" signal for a
 * service deployment.
 */
struct WatchdogParams
{
    bool enabled = true;
    /** Check period in simulated microseconds. */
    double cadenceUs = 5.0;
    /** Consecutive no-progress checks before the run is declared
     *  wedged. */
    unsigned maxStrikes = 2;
};

/**
 * Hardware description of a node, sufficient to build a System.
 */
struct SystemParams
{
    std::string name = "node";
    int cores = 4;
    unsigned threadsPerCore = 1;
    double freqGHz = 2.0;
    unsigned lineBytes = 64;
    unsigned lqSize = 64;

    /** Core compute throughput by active SMT ways (see CoreModel). */
    std::array<double, 5> smtCapacity{0.0, 0.85, 1.0, 0.0, 0.0};

    Cache::Params l1;
    Cache::Params l2;
    bool hasL3 = false;
    Cache::Params l3;

    bool l2PrefetcherEnabled = true;
    StreamPrefetcher::Params pf;

    MemCtrl::Params mem;

    WatchdogParams watchdog;

    uint64_t seed = 1;

    /** Permutes pop order of equal-tick events (0 = insertion order);
     *  only the determinism checker should set this — see
     *  EventQueue::setTieBreakSeed(). */
    uint64_t tieBreakSeed = 0;
};

/**
 * Everything a measurement window yields; the raw material the counters
 * layer and the analyzer consume.
 */
struct RunResult
{
    double measureSeconds = 0.0;

    // Performance
    double workDone = 0.0;       //!< logical work units in the window
    double throughput = 0.0;     //!< work units per second
    uint64_t opsIssued = 0;

    // Memory traffic
    double readGBs = 0.0;
    double writeGBs = 0.0;
    double totalGBs = 0.0;
    double demandFraction = 1.0; //!< demand share of memory reads
    double memUtilization = 0.0;
    double avgMemLatencyNs = 0.0; //!< true in-sim loaded latency (reads)
    double p50MemLatencyNs = 0.0;
    double p95MemLatencyNs = 0.0;
    double p99MemLatencyNs = 0.0;
    double avgMemOutstanding = 0.0;

    // MSHR ground truth (per-core averages)
    double avgL1MshrOccupancy = 0.0;
    double avgL2MshrOccupancy = 0.0;
    double maxL1MshrOccupancy = 0.0;
    double maxL2MshrOccupancy = 0.0;
    uint64_t l1FullStalls = 0;
    uint64_t l2FullStalls = 0;

    // Cache behaviour
    uint64_t l1DemandMisses = 0;
    uint64_t l1DemandHits = 0;
    uint64_t l2DemandMisses = 0;
    uint64_t l2DemandHits = 0;
    uint64_t hwPrefIssued = 0;
    uint64_t hwPrefUseful = 0;
    uint64_t swPrefIssued = 0;
    uint64_t l2PrefetchDropped = 0;
    uint64_t memReadLines = 0;
    uint64_t memWriteLines = 0;
    uint64_t memHwPrefetchLines = 0;
    uint64_t memSwPrefetchLines = 0;

    uint64_t eventsProcessed = 0;
};

/**
 * A simulated node running one kernel.
 */
class System
{
  public:
    System(const SystemParams &params, const KernelSpec &spec);

    /** Multi-phase variant: threads cycle through @p phases round robin
     *  (whole-program emulation; see PhaseSpec). */
    System(const SystemParams &params, std::vector<PhaseSpec> phases);

    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run the kernel for @p warmup_us of simulated time, reset all
     * statistics, run @p measure_us more, and report the window.
     *
     * A DeadlineExceeded error (carrying a diagnostic snapshot of the
     * queue and MSHR state) is returned when the forward-progress
     * watchdog declares the event queue wedged; `sim_errors_total` is
     * incremented on the attached registry, if any.
     */
    [[nodiscard]] util::Result<RunResult> runChecked(double warmup_us,
                                       double measure_us);

    /** Legacy convenience wrapper: fatal when runChecked() errors. */
    RunResult run(double warmup_us, double measure_us);

    // Component access for tests and the counters layer.
    EventQueue &eventQueue() { return eq_; }
    MemCtrl &mem() { return *mem_; }
    Cache &l1(int core) { return *l1s_.at(core); }
    Cache &l2(int core) { return *l2s_.at(core); }
    Cache *l3() { return l3_.get(); }
    CoreModel &core(int core) { return *cores_.at(core); }
    ThreadContext &thread(int core, unsigned t);
    StreamPrefetcher *prefetcher(int core);
    const SystemParams &params() const { return params_; }
    const KernelSpec &spec() const { return phases_.front().spec; }
    const std::vector<PhaseSpec> &phases() const { return phases_; }
    RequestPool &pool() { return pool_; }

    /** Reset all statistics at the current tick. */
    void resetStats();

    /**
     * Publish the node's telemetry into @p registry and start a
     * periodic sampling event on the event queue: MSHR occupancies,
     * achieved bandwidth, memory queue depth and core busy/stall
     * fractions become time series; cache/controller counters snapshot
     * at export time.  Callback gauges are frozen (keeping their last
     * value) when this System is destroyed, so the metrics survive the
     * run; @p registry itself must therefore outlive this System.
     * Call at most once per System.
     */
    void attachObservability(obs::MetricRegistry &registry,
                             obs::Sampler::Params params = {});

    /** The sampler driving the time series (null until attached). */
    obs::Sampler *sampler() { return sampler_.get(); }

    /**
     * One-line diagnostic snapshot of live simulator state (tick,
     * queue depth, per-core MSHR occupancy, memory outstanding) — what
     * the watchdog attaches to its error and `lll selftest` prints.
     */
    std::string diagnosticSnapshot() const;

  private:
    void scheduleSample();
    void scheduleWatchdog();
    SystemParams params_;
    std::vector<PhaseSpec> phases_;
    EventQueue eq_;
    RequestPool pool_;

    std::unique_ptr<MemCtrl> mem_;
    std::unique_ptr<Cache> l3_;
    std::vector<std::unique_ptr<Cache>> l2s_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::vector<std::unique_ptr<StreamPrefetcher>> pfs_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    std::vector<std::unique_ptr<ThreadContext>> threads_;

    obs::MetricRegistry *obsRegistry_ = nullptr;
    std::unique_ptr<obs::Sampler> sampler_;
    std::vector<std::string> obsNames_;

    bool started_ = false;

    // Forward-progress watchdog state.
    bool wdScheduled_ = false;
    uint64_t wdLastProcessed_ = 0;
    unsigned wdStrikes_ = 0;
    bool wdTripped_ = false;
    std::string wdDiagnostic_;
};

} // namespace lll::sim

#endif // LLL_SIM_SYSTEM_HH
