#include "sim/cache.hh"

#include "sim/stream_prefetcher.hh"
#include "sim/thread_context.hh"

namespace lll::sim
{

void
Cache::CacheStats::reset()
{
    demandHits.reset();
    demandMisses.reset();
    demandMshrHits.reset();
    prefetchFills.reset();
    prefetchUseful.reset();
    prefetchDropped.reset();
    writebacksOut.reset();
    fills.reset();
}

Cache::Cache(const Params &params, EventQueue &eq, RequestPool &pool)
    : params_(params), eq_(eq), pool_(pool),
      mshrs_(params.name + ".mshrs", params.mshrs)
{
    lll_assert((params_.sets & (params_.sets - 1)) == 0,
               "%s: sets must be a power of two", params_.name.c_str());
    lll_assert(params_.ways > 0, "%s: ways must be positive",
               params_.name.c_str());
    lines_.resize(static_cast<size_t>(params_.sets) * params_.ways);
}

unsigned
Cache::setIndex(uint64_t lineAddr) const
{
    uint64_t x = lineAddr;
    if (params_.hashedSets) {
        x ^= x >> 17;
        x *= 0xed5ad4bbac4c1b51ULL;
        x ^= x >> 28;
    }
    return static_cast<unsigned>(x & (params_.sets - 1));
}

Cache::Line *
Cache::lookup(uint64_t lineAddr)
{
    Line *set = &lines_[static_cast<size_t>(setIndex(lineAddr)) *
                        params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (set[w].valid && set[w].lineAddr == lineAddr)
            return &set[w];
    }
    return nullptr;
}

bool
Cache::isResident(uint64_t lineAddr) const
{
    return const_cast<Cache *>(this)->lookup(lineAddr) != nullptr;
}

Cache::Line *
Cache::insert(uint64_t lineAddr, bool dirty, bool prefetched)
{
    Line *set = &lines_[static_cast<size_t>(setIndex(lineAddr)) *
                        params_.ways];
    Line *victim = &set[0];
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUsed < victim->lastUsed)
            victim = &set[w];
    }

    if (victim->valid && victim->dirty) {
        // Dirty eviction: write the victim back downstream.  Writebacks
        // are never refused (write buffers, not MSHRs, carry them).
        MemRequest *wb = pool_.alloc();
        wb->lineAddr = victim->lineAddr;
        wb->type = ReqType::Writeback;
        wb->issued = eq_.now();
        ++stats_.writebacksOut;
        bool ok = down_->tryAccess(wb);
        lll_assert(ok, "%s: downstream refused a writeback",
                   params_.name.c_str());
    }

    victim->lineAddr = lineAddr;
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->lastUsed = ++useClock_;
    return victim;
}

bool
Cache::tryAccess(MemRequest *req)
{
    const Tick now = eq_.now();

    if (req->type == ReqType::Writeback) {
        // A dirty line arriving from the level above: update in place if
        // resident, otherwise install it (which may cascade an eviction).
        if (Line *line = lookup(req->lineAddr)) {
            line->dirty = true;
            line->lastUsed = ++useClock_;
        } else {
            insert(req->lineAddr, /*dirty=*/true, /*prefetched=*/false);
        }
        pool_.free(req);
        return true;
    }

    if (Line *line = lookup(req->lineAddr)) {
        // Hit.
        line->lastUsed = ++useClock_;
        ++stats_.demandHits;
        if (line->prefetched) {
            ++stats_.prefetchUseful;
            line->prefetched = false;
        }
        if (req->isStore())
            line->dirty = true;
        if (req->origin) {
            // Fill request from the level above: respond with the line.
            MemRequest *resp = req;
            eq_.schedule(now + params_.accessLat,
                         fillPrio(*resp->origin, resp->lineAddr),
                         [resp] { resp->origin->handleFill(resp); });
        } else if (req->requester) {
            MemRequest *op = req;
            eq_.schedule(now + params_.accessLat,
                         schedPrio(SchedBand::Thread,
                                   schedThreadKey(op->core, op->thread)),
                         [op] { op->requester->opComplete(op); });
        } else {
            pool_.free(req);
        }
        if (prefetcher_ && isDemand(req->type))
            prefetcher_->observe(req->lineAddr, req->core);
        return true;
    }

    // Miss.
    if (Mshr *mshr = mshrs_.lookup(req->lineAddr)) {
        // The line is already being fetched; coalesce.
        ++stats_.demandMshrHits;
        if (isDemand(req->type) && mshr->originType == ReqType::HwPrefetch)
            ++stats_.prefetchUseful;   // late but still overlapping
        mshr->targets.push_back(req);
        if (prefetcher_ && isDemand(req->type))
            prefetcher_->observe(req->lineAddr, req->core);
        return true;
    }

    if (mshrs_.full()) {
        mshrs_.recordFullStall();
        return false;
    }

    ++stats_.demandMisses;
    Mshr *mshr = mshrs_.allocate(req->lineAddr, req->type, now);
    mshr->targets.push_back(req);

    MemRequest *fill = pool_.alloc();
    fill->lineAddr = req->lineAddr;
    fill->type = ReqType::DemandLoad;
    fill->core = req->core;
    fill->thread = req->thread;
    fill->issued = now;
    fill->origin = this;
    eq_.schedule(now + params_.accessLat,
                 sendPrio(*this, fill->core, fill->thread, fill->lineAddr),
                 [this, fill] { sendDownstream(fill); });

    if (prefetcher_ && isDemand(req->type))
        prefetcher_->observe(req->lineAddr, req->core);
    return true;
}

PrefetchOutcome
Cache::tryPrefetch(uint64_t lineAddr, ReqType type, int core, int thread)
{
    lll_assert(type == ReqType::SwPrefetch || type == ReqType::HwPrefetch,
               "tryPrefetch with non-prefetch type");
    if (lookup(lineAddr) != nullptr)
        return PrefetchOutcome::Covered;    // already resident
    if (mshrs_.lookup(lineAddr) != nullptr)
        return PrefetchOutcome::Covered;    // already in flight

    // Keep a few MSHRs free for demand traffic.  Under pressure, chain
    // the prefetch to the next cache level if there is one (Intel's L2
    // streamer demotes to LLC prefetches in this situation), or defer it
    // to the local prefetch queue; drop it when that is full too.
    unsigned size = mshrs_.size();
    if (size != 0 && mshrs_.used() + params_.prefetchReserve >= size) {
        if (downCache_ != nullptr) {
            PrefetchOutcome out =
                downCache_->tryPrefetch(lineAddr, type, core, thread);
            if (out != PrefetchOutcome::Dropped)
                return out;
        }
        if (deferredPf_.size() < params_.prefetchQueue) {
            deferredPf_.push_back({lineAddr, type, core, thread});
            return PrefetchOutcome::Deferred;
        }
        ++stats_.prefetchDropped;
        return PrefetchOutcome::Dropped;
    }

    startPrefetch(lineAddr, type, core, thread);
    return PrefetchOutcome::Started;
}

void
Cache::startPrefetch(uint64_t lineAddr, ReqType type, int core, int thread)
{
    const Tick now = eq_.now();
    mshrs_.allocate(lineAddr, type, now);

    MemRequest *fill = pool_.alloc();
    fill->lineAddr = lineAddr;
    fill->type = type;
    fill->core = core;
    fill->thread = thread;
    fill->issued = now;
    fill->origin = this;
    eq_.schedule(now + params_.accessLat,
                 sendPrio(*this, fill->core, fill->thread, fill->lineAddr),
                 [this, fill] { sendDownstream(fill); });
}

void
Cache::servePendingPrefetches()
{
    while (!deferredPf_.empty() && !mshrs_.full()) {
        PendingPrefetch pf = deferredPf_.front();
        deferredPf_.pop_front();
        if (lookup(pf.lineAddr) != nullptr ||
            mshrs_.lookup(pf.lineAddr) != nullptr) {
            continue;   // covered while it waited
        }
        startPrefetch(pf.lineAddr, pf.type, pf.core, pf.thread);
    }
}

void
Cache::sendDownstream(MemRequest *fillReq)
{
    if (!pendingDown_.empty()) {
        pendingDown_.push_back(fillReq);
        return;
    }
    if (!down_->tryAccess(fillReq)) {
        pendingDown_.push_back(fillReq);
        if (!retryRegistered_) {
            retryRegistered_ = true;
            down_->addRetryWaiter([this] { drainPending(); });
        }
    }
}

void
Cache::drainPending()
{
    retryRegistered_ = false;
    while (!pendingDown_.empty()) {
        MemRequest *head = pendingDown_.front();
        if (!down_->tryAccess(head)) {
            if (!retryRegistered_) {
                retryRegistered_ = true;
                down_->addRetryWaiter([this] { drainPending(); });
            }
            return;
        }
        pendingDown_.pop_front();
    }
}

void
Cache::completeTargets(Mshr *mshr)
{
    const Tick now = eq_.now();
    Line *line = lookup(mshr->lineAddr);
    lll_assert(line != nullptr, "%s: completing targets without a line",
               params_.name.c_str());

    for (MemRequest *target : mshr->targets) {
        if (target->isStore())
            line->dirty = true;
        if (target->origin) {
            MemRequest *resp = target;
            eq_.schedule(now, fillPrio(*resp->origin, resp->lineAddr),
                         [resp] { resp->origin->handleFill(resp); });
        } else if (target->requester) {
            MemRequest *op = target;
            eq_.schedule(now,
                         schedPrio(SchedBand::Thread,
                                   schedThreadKey(op->core, op->thread)),
                         [op] { op->requester->opComplete(op); });
        } else {
            pool_.free(target);
        }
    }
    mshr->targets.clear();
}

void
Cache::handleFill(MemRequest *fillReq)
{
    const Tick now = eq_.now();
    bool prefetched = !isDemand(fillReq->type) &&
                      fillReq->type != ReqType::Writeback;

    ++stats_.fills;
    if (prefetched)
        ++stats_.prefetchFills;

    insert(fillReq->lineAddr, /*dirty=*/false, prefetched);

    Mshr *mshr = mshrs_.lookup(fillReq->lineAddr);
    lll_assert(mshr != nullptr, "%s: fill without an MSHR for line %llu",
               params_.name.c_str(),
               static_cast<unsigned long long>(fillReq->lineAddr));
    completeTargets(mshr);
    mshrs_.deallocate(mshr, now);
    pool_.free(fillReq);

    // Deferred prefetches take freed MSHRs ahead of demand retries: a
    // trained streamer runs ahead of the demand front, which is what
    // converts later demand misses into hits.
    servePendingPrefetches();
    notifyRetryWaiters();
}

void
Cache::addRetryWaiter(EventFn cb)
{
    retryWaiters_.push_back(std::move(cb));
}

void
Cache::notifyRetryWaiters()
{
    if (retryWaiters_.empty())
        return;
    std::vector<EventFn> waiters;
    waiters.swap(retryWaiters_);
    for (auto &cb : waiters)
        cb();
}

void
Cache::resetStats(Tick now)
{
    stats_.reset();
    mshrs_.resetStats(now);
}

void
Cache::registerMetrics(obs::MetricRegistry &reg, const std::string &prefix,
                       std::vector<std::string> &names) const
{
    auto add = [&](const char *suffix, obs::GaugeMetric::Reader reader) {
        std::string name = prefix + suffix;
        reg.registerGauge(name, std::move(reader),
                          obs::GaugeMode::Callback);
        names.push_back(std::move(name));
    };
    add(".demand_hits",
        [this] { return static_cast<double>(stats_.demandHits.value()); });
    add(".demand_misses", [this] {
        return static_cast<double>(stats_.demandMisses.value());
    });
    add(".mshr_hits", [this] {
        return static_cast<double>(stats_.demandMshrHits.value());
    });
    add(".prefetch_fills", [this] {
        return static_cast<double>(stats_.prefetchFills.value());
    });
    add(".prefetch_useful", [this] {
        return static_cast<double>(stats_.prefetchUseful.value());
    });
    add(".prefetch_dropped", [this] {
        return static_cast<double>(stats_.prefetchDropped.value());
    });
    add(".writebacks", [this] {
        return static_cast<double>(stats_.writebacksOut.value());
    });
    add(".fills",
        [this] { return static_cast<double>(stats_.fills.value()); });
}

} // namespace lll::sim
