/**
 * @file
 * Miss Status Handling Register queue.
 *
 * This is the structure the whole paper revolves around: the number of
 * in-flight line misses a cache can track.  The queue integrates its
 * occupancy over time so a measurement window can report the true
 * time-weighted average occupancy — the ground truth that the analyzer's
 * Little's-law estimate (Equation 2 of the paper) is validated against.
 */

#ifndef LLL_SIM_MSHR_QUEUE_HH
#define LLL_SIM_MSHR_QUEUE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.hh"
#include "sim/request.hh"
#include "util/stats.hh"

namespace lll::sim
{

/**
 * One outstanding line miss: the line being fetched plus every request
 * (demand or prefetch) waiting for it.
 */
struct Mshr
{
    uint64_t lineAddr = 0;
    Tick allocated = 0;
    /** The type that caused allocation (prefetch MSHRs can be "claimed"
     *  by a later demand miss to the same line). */
    ReqType originType = ReqType::DemandLoad;
    /** Requests parked on this line. */
    std::vector<MemRequest *> targets;
    bool inUse = false;
};

/**
 * Fixed-capacity MSHR queue with coalescing and occupancy accounting.
 */
class MshrQueue
{
  public:
    /**
     * @param name for diagnostics
     * @param size capacity; 0 means effectively unbounded (used for the
     *             shared LLC which the paper does not model as a limiter)
     */
    MshrQueue(std::string name, unsigned size);

    bool full() const { return size_ != 0 && used_ >= size_; }
    unsigned used() const { return used_; }
    unsigned size() const { return size_; }
    const std::string &name() const { return name_; }

    /** Find the in-flight entry for @p lineAddr, or nullptr. */
    Mshr *lookup(uint64_t lineAddr);

    /**
     * Allocate an entry for @p lineAddr.  Panics if full or duplicate —
     * callers must check full()/lookup() first.
     */
    Mshr *allocate(uint64_t lineAddr, ReqType origin, Tick now);

    /** Release @p mshr (its targets must already have been drained). */
    void deallocate(Mshr *mshr, Tick now);

    /** Record that an allocation was refused because the queue was full. */
    void recordFullStall() { ++fullStalls_; }

    /** Number of refused allocations since the last stats reset. */
    uint64_t fullStalls() const { return fullStalls_.value(); }

    /** Total allocations since the last stats reset. */
    uint64_t allocations() const { return allocations_.value(); }

    /** Time-weighted average occupancy over [window_start, now]. */
    double avgOccupancy(Tick window_start, Tick now) const
    {
        return occupancy_.mean(window_start, now);
    }

    /** Highest occupancy observed since the last stats reset. */
    double maxOccupancy() const { return occupancy_.max(); }

    /** Restart statistics at @p now (occupancy level is retained). */
    void resetStats(Tick now);

    /**
     * Publish this queue's metrics under @p prefix (occupancy is
     * sampler-driven; the rest snapshot at export).  Registered names
     * are appended to @p names so the owner can freeze them on
     * teardown.
     */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix,
                         std::vector<std::string> &names) const;

  private:
    std::string name_;
    unsigned size_;
    unsigned used_ = 0;
    std::vector<Mshr> entries_;
    std::vector<unsigned> freeList_;
    std::unordered_map<uint64_t, unsigned> index_;
    TimeWeightedStat occupancy_;
    Counter fullStalls_;
    Counter allocations_;
};

} // namespace lll::sim

#endif // LLL_SIM_MSHR_QUEUE_HH
