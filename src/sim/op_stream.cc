#include "sim/op_stream.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace lll::sim
{

namespace
{

constexpr unsigned patternLen = 64;
constexpr uint64_t regionBits = 24;   //!< lines of address space per stream

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

OpStream::OpStream(const KernelSpec &spec, uint64_t thread_seed,
                   uint64_t core_seed)
{
    lll_assert(!spec.streams.empty(), "kernel '%s' has no streams",
               spec.name.c_str());

    double total_weight = 0.0;
    for (const StreamDesc &d : spec.streams)
        total_weight += d.weight;
    lll_assert(total_weight > 0.0, "kernel '%s' has zero total weight",
               spec.name.c_str());

    const int n = static_cast<int>(spec.streams.size());
    streams_.reserve(n);
    for (int s = 0; s < n; ++s) {
        StreamState st;
        st.desc = spec.streams[s];
        if (st.desc.footprintLines == 0)
            st.desc.footprintLines = 1;
        lll_assert(st.desc.footprintLines <= (1ULL << (regionBits - 1)),
                   "stream footprint too large (%llu lines)",
                   static_cast<unsigned long long>(st.desc.footprintLines));
        uint64_t owner = st.desc.sharedAcrossThreads ? core_seed * 2 + 1
                                                     : thread_seed * 2 + 2;
        st.seed = splitmix64(owner * 1315423911ULL + s);
        // Place the stream at a randomized offset inside its private
        // region: real allocations never start set-aligned, and
        // correlated phases across hundreds of streams would otherwise
        // thrash a few cache sets in unison.
        uint64_t region = (owner << 32) |
                          (static_cast<uint64_t>(s) << regionBits);
        uint64_t slack = (1ULL << regionBits) - st.desc.footprintLines;
        uint64_t offset = slack ? splitmix64(st.seed ^ 0x0ff5e7) % slack
                                : 0;
        st.base = region + offset;
        streams_.push_back(st);
    }

    // Quantize weights into an interleave pattern of patternLen slots.
    std::vector<unsigned> counts(n, 0);
    unsigned assigned = 0;
    for (int s = 0; s < n; ++s) {
        double share = spec.streams[s].weight / total_weight;
        counts[s] = std::max(1u, static_cast<unsigned>(
                                     share * patternLen + 0.5));
        assigned += counts[s];
    }
    // Rebalance to exactly patternLen by adjusting the largest stream.
    while (assigned != patternLen) {
        int big = static_cast<int>(
            std::max_element(counts.begin(), counts.end()) -
            counts.begin());
        if (assigned > patternLen) {
            lll_assert(counts[big] > 1, "cannot shrink pattern further");
            --counts[big];
            --assigned;
        } else {
            ++counts[big];
            ++assigned;
        }
    }

    // Error-diffusion interleave: at each slot, pick the stream furthest
    // behind its ideal cumulative share.
    pattern_.resize(patternLen);
    perPattern_ = counts;
    std::vector<unsigned> placed(n, 0);
    rankAt_.assign(n, std::vector<unsigned>(patternLen, 0));
    for (unsigned slot = 0; slot < patternLen; ++slot) {
        int best = -1;
        double best_deficit = -1e300;
        for (int s = 0; s < n; ++s) {
            double ideal = static_cast<double>(counts[s]) * (slot + 1) /
                           patternLen;
            double deficit = ideal - placed[s];
            if (placed[s] < counts[s] && deficit > best_deficit) {
                best_deficit = deficit;
                best = s;
            }
        }
        lll_assert(best >= 0, "pattern construction failed");
        for (int s = 0; s < n; ++s)
            rankAt_[s][slot] = placed[s];
        pattern_[slot] = best;
        ++placed[best];
    }
}

uint64_t
OpStream::baseAddress(int s, uint64_t k) const
{
    const StreamState &st = streams_[s];
    const uint64_t fp = st.desc.footprintLines;
    switch (st.desc.kind) {
      case StreamDesc::Kind::Sequential:
        return st.base + (k % fp);
      case StreamDesc::Kind::Strided:
        return st.base +
               (k * static_cast<uint64_t>(st.desc.strideLines)) % fp;
      case StreamDesc::Kind::Random:
        return st.base + splitmix64(k ^ st.seed) % fp;
    }
    return st.base;
}

Op
OpStream::at(uint64_t n) const
{
    const unsigned slot = static_cast<unsigned>(n % patternLen);
    const uint64_t period = n / patternLen;
    const int s = pattern_[slot];
    const StreamState &st = streams_[s];

    uint64_t k = period * perPattern_[s] + rankAt_[s][slot];

    if (st.desc.reuseFraction > 0.0 && k > 0) {
        uint64_t h = splitmix64(k * 0x9e3779b97f4a7c15ULL ^ st.seed);
        double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
        if (u < st.desc.reuseFraction) {
            uint64_t back = 1 + splitmix64(h) % st.desc.reuseWindow;
            k = back >= k ? 0 : k - back;
        }
    }

    Op op;
    op.lineAddr = baseAddress(s, k);
    op.type = st.desc.store ? ReqType::DemandStore : ReqType::DemandLoad;
    op.streamIdx = s;
    op.swPrefetchable = st.desc.swPrefetchable;
    return op;
}

} // namespace lll::sim
