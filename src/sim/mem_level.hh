/**
 * @file
 * Interface implemented by anything that can sit below a cache
 * (another cache level or the memory controller).
 */

#ifndef LLL_SIM_MEM_LEVEL_HH
#define LLL_SIM_MEM_LEVEL_HH

#include "sim/event_queue.hh"
#include "sim/request.hh"

namespace lll::sim
{

/**
 * Downstream side of the memory hierarchy.
 *
 * tryAccess() is the single entry point; a component that cannot accept
 * the request right now (full MSHR queue) returns false, and the caller
 * must park the request and register a retry callback.  The memory
 * controller never refuses.
 */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Present @p req to this level.  On acceptance the level owns the
     * request until it responds (fills route back via req->origin) or, for
     * writebacks, until it retires the request internally.
     *
     * @return false if the request was refused and must be retried.
     */
    virtual bool tryAccess(MemRequest *req) = 0;

    /**
     * Register a one-shot callback invoked the next time refused capacity
     * frees up.  Callers re-register if they are refused again.
     */
    virtual void addRetryWaiter(EventFn cb) = 0;
};

} // namespace lll::sim

#endif // LLL_SIM_MEM_LEVEL_HH
