#include "sim/tracer.hh"

#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace lll::sim
{

std::string
RequestTracer::toCsv() const
{
    std::ostringstream out;
    out << "when_ns,line_addr,type,core,latency_ns\n";
    char buf[128];
    for (const Event &ev : events()) {
        std::snprintf(buf, sizeof(buf), "%.3f,%llu,%s,%d,%.2f\n",
                      ticksToNs(ev.when),
                      static_cast<unsigned long long>(ev.lineAddr),
                      reqTypeName(ev.type), ev.core, ev.latencyNs);
        out << buf;
    }
    return out.str();
}

std::string
RequestTracer::toJson() const
{
    std::ostringstream out;
    out << "{\"total\": " << total_ << ", \"events\": [";
    char buf[192];
    bool first = true;
    for (const Event &ev : events()) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"when_ns\": %.3f, \"line_addr\": %llu, "
                      "\"type\": \"%s\", \"core\": %d, "
                      "\"latency_ns\": %.2f}",
                      first ? "" : ", ", ticksToNs(ev.when),
                      static_cast<unsigned long long>(ev.lineAddr),
                      reqTypeName(ev.type), ev.core, ev.latencyNs);
        first = false;
        out << buf;
    }
    out << "]}";
    return out.str();
}

double
RequestTracer::localityScore(unsigned window) const
{
    // A core interleaves several concurrent streams (plus prefetches),
    // so locality is judged against a short history of that core's
    // recent lines, not just the immediately preceding one.
    constexpr size_t history = 16;
    std::map<int, std::vector<uint64_t>> recent_by_core;
    uint64_t local = 0, scored = 0;
    for (const Event &ev : events()) {
        std::vector<uint64_t> &recent = recent_by_core[ev.core];
        if (!recent.empty()) {
            ++scored;
            for (uint64_t prev : recent) {
                int64_t delta = static_cast<int64_t>(ev.lineAddr) -
                                static_cast<int64_t>(prev);
                if (std::llabs(delta) <= static_cast<int64_t>(window)) {
                    ++local;
                    break;
                }
            }
        }
        recent.push_back(ev.lineAddr);
        if (recent.size() > history)
            recent.erase(recent.begin());
    }
    return scored ? static_cast<double>(local) /
                        static_cast<double>(scored)
                  : 0.0;
}

} // namespace lll::sim
