#include "sim/request.hh"

#include "util/logging.hh"

namespace lll::sim
{

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::DemandLoad:  return "DemandLoad";
      case ReqType::DemandStore: return "DemandStore";
      case ReqType::SwPrefetch:  return "SwPrefetch";
      case ReqType::HwPrefetch:  return "HwPrefetch";
      case ReqType::Writeback:   return "Writeback";
    }
    return "?";
}

RequestPool::~RequestPool()
{
    for (MemRequest *req : all_)
        delete req;
}

MemRequest *
RequestPool::alloc()
{
    MemRequest *req;
    if (free_.empty()) {
        req = new MemRequest();
        all_.push_back(req);
    } else {
        req = free_.back();
        free_.pop_back();
        *req = MemRequest();
    }
    ++outstanding_;
    return req;
}

void
RequestPool::free(MemRequest *req)
{
    lll_assert(req != nullptr, "freeing null request");
    --outstanding_;
    free_.push_back(req);
}

} // namespace lll::sim
