/**
 * @file
 * L2 stream prefetcher with a bounded stream-tracking table.
 *
 * The bounded table is load-bearing for the reproduction: the paper
 * explains the small HPCG gain from 4-way SMT on KNL by the L2 prefetcher
 * only being able to track 16 streams while four hyperthreads introduce
 * 8–10 streams each.  Table pressure and the resulting coverage loss
 * emerge here rather than being scripted.
 */

#ifndef LLL_SIM_STREAM_PREFETCHER_HH
#define LLL_SIM_STREAM_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace lll::sim
{

class Cache;

/**
 * Reference-prediction-table style stream prefetcher.
 *
 * observe() is called for every demand access arriving at the attached
 * cache.  Accesses within a small window of a tracked stream's head
 * confirm the stream and advance it; confirmed streams prefetch up to
 * `distance` lines ahead, issuing at most `degree` prefetches per trigger.
 */
class StreamPrefetcher
{
  public:
    struct Params
    {
        std::string name = "l2pf";
        unsigned tableSize = 16;    //!< concurrently tracked streams
        unsigned matchWindow = 4;   //!< lines around the head that confirm
        unsigned distance = 16;     //!< how far ahead of demand to run
        unsigned degree = 4;        //!< max prefetches per trigger
        unsigned trainThreshold = 2; //!< confirmations before issuing
    };

    struct PfStats
    {
        Counter issued;
        Counter triggers;
        Counter allocations;   //!< new streams allocated (evictions proxy)

        void
        reset()
        {
            issued.reset();
            triggers.reset();
            allocations.reset();
        }
    };

    StreamPrefetcher(const Params &params, Cache &owner);

    /** Train on a demand access and possibly issue prefetches. */
    void observe(uint64_t lineAddr, int core);

    const PfStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    struct Stream
    {
        uint64_t head = 0;          //!< most recent demand line
        uint64_t issuedUpTo = 0;    //!< highest line prefetched
        int dir = 1;                //!< +1 ascending, -1 descending
        unsigned confidence = 0;
        uint64_t lastUsed = 0;
        bool valid = false;
    };

    Params params_;
    Cache &owner_;
    std::vector<Stream> table_;
    uint64_t useClock_ = 0;
    PfStats stats_;
};

} // namespace lll::sim

#endif // LLL_SIM_STREAM_PREFETCHER_HH
