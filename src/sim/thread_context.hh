/**
 * @file
 * A hardware thread executing a kernel as a closed-loop load generator.
 *
 * The thread keeps at most `window` demand loads in flight (the MLP the
 * code exposes), separated by compute phases served by the shared core
 * model.  Memory-side limits — MSHR queues, prefetch coverage, loaded
 * memory latency — then determine the equilibrium issue rate, which is
 * exactly the mechanism Little's law describes.
 */

#ifndef LLL_SIM_THREAD_CONTEXT_HH
#define LLL_SIM_THREAD_CONTEXT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/core_model.hh"
#include "sim/event_queue.hh"
#include "sim/kernel_spec.hh"
#include "sim/op_stream.hh"
#include "sim/request.hh"
#include "util/stats.hh"

namespace lll::sim
{

class Cache;

/**
 * One phase of a thread's execution: a kernel plus how many memory ops
 * to run before moving to the next phase (round robin).  A whole
 * "program" of alternating routines is a list of phases — which is
 * exactly the situation where the paper's footnote-1 stationarity
 * caveat bites.
 */
struct PhaseSpec
{
    KernelSpec spec;
    /** Ops per visit before switching (0 = run forever). */
    uint64_t opsPerVisit = 0;
};

/**
 * One software/hardware thread bound to a core.
 */
class ThreadContext
{
  public:
    struct Params
    {
        int core = 0;
        unsigned thread = 0;        //!< SMT slot within the core
        unsigned lqSize = 64;       //!< hardware load-queue bound on MLP
        uint64_t threadSeed = 1;    //!< unique across the system
        uint64_t coreSeed = 1;      //!< shared by a core's threads
    };

    ThreadContext(const Params &params, const KernelSpec &spec,
                  EventQueue &eq, RequestPool &pool, CoreModel &core,
                  Cache &l1, Cache &l2);

    ThreadContext(const Params &params, std::vector<PhaseSpec> phases,
                  EventQueue &eq, RequestPool &pool, CoreModel &core,
                  Cache &l1, Cache &l2);

    /** Begin executing; call once before System::run. */
    void start();

    /** Completion callback from the L1 for a demand op. */
    void opComplete(MemRequest *req);

    /** Retry hook the L1 fires when MSHR capacity frees. */
    void retry();

    /** Total memory ops issued since the last stats reset. */
    uint64_t opsIssued() const { return opsIssued_; }

    /** Logical work units completed since the last stats reset. */
    double workDone() const { return workDone_; }

    /** Demand loads currently in flight (test aid). */
    unsigned inFlight() const { return inFlight_; }

    uint64_t swPrefetchesIssued() const { return swPrefIssued_; }

    /** Index of the phase currently executing (test aid). */
    size_t currentPhase() const { return phase_; }

    void resetStats();

  private:
    void computeDone();
    void tryIssue();
    void beginCompute();

    const KernelSpec &spec() const { return states_[phase_].phase.spec; }
    void maybeAdvancePhase();

    struct PhaseState
    {
        PhaseSpec phase;
        OpStream ops;
        uint64_t opIndex = 0;
        unsigned effWindow = 0;     //!< min(spec.window, lqSize)
    };

    Params params_;
    EventQueue &eq_;
    RequestPool &pool_;
    CoreModel &core_;
    Cache &l1_;
    Cache &l2_;

    std::vector<PhaseState> states_;
    size_t phase_ = 0;
    uint64_t opsThisVisit_ = 0;

    unsigned inFlight_ = 0;
    bool computeReady_ = false;
    bool waitingRetry_ = false;
    std::optional<Op> pendingOp_;

    uint64_t opsIssued_ = 0;
    double workDone_ = 0.0;
    uint64_t swPrefIssued_ = 0;
};

} // namespace lll::sim

#endif // LLL_SIM_THREAD_CONTEXT_HH
