/**
 * @file
 * Memory request descriptors and a free-list pool for them.
 *
 * Requests travel at cache-line granularity.  A demand op from a thread is
 * one request; when it misses a cache, the MSHR entry parks it as a target
 * and a fresh "fill" request is sent downstream on behalf of the line.
 */

#ifndef LLL_SIM_REQUEST_HH
#define LLL_SIM_REQUEST_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"

namespace lll::sim
{

class Cache;
class ThreadContext;

/** What kind of agent produced a request. */
enum class ReqType : uint8_t
{
    DemandLoad,
    DemandStore,
    SwPrefetch,     //!< software prefetch targeting a specific level
    HwPrefetch,     //!< hardware stream prefetcher at the L2
    Writeback,      //!< dirty eviction flowing toward memory
};

/** Human-readable request type name. */
const char *reqTypeName(ReqType t);

/** True for the two demand types. */
inline bool
isDemand(ReqType t)
{
    return t == ReqType::DemandLoad || t == ReqType::DemandStore;
}

/**
 * A single line-granular memory request.
 *
 * Ownership: requests are pool-allocated (RequestPool) and returned to the
 * pool by the component that completes them.
 */
struct MemRequest
{
    uint64_t lineAddr = 0;      //!< address in units of cache lines
    ReqType type = ReqType::DemandLoad;
    int core = -1;              //!< originating core id
    int thread = -1;            //!< originating hw thread id within core
    Tick issued = 0;            //!< time the originating agent created it

    /** Cache waiting for this fill (response routing). */
    Cache *origin = nullptr;

    /** Thread to notify when a demand op completes (may be null). */
    ThreadContext *requester = nullptr;

    /** Marks a store so fills set the dirty bit. */
    bool isStore() const { return type == ReqType::DemandStore; }
};

/**
 * Free-list allocator for MemRequest.
 *
 * The simulator creates millions of requests per run; pooling keeps this
 * out of the general-purpose allocator.
 */
class RequestPool
{
  public:
    ~RequestPool();

    RequestPool() = default;
    RequestPool(const RequestPool &) = delete;
    RequestPool &operator=(const RequestPool &) = delete;

    /** Fetch a zeroed request. */
    MemRequest *alloc();

    /** Return a request to the pool. */
    void free(MemRequest *req);

    /** Requests currently checked out (leak detector for tests). */
    int64_t outstanding() const { return outstanding_; }

  private:
    std::vector<MemRequest *> free_;
    std::vector<MemRequest *> all_;
    int64_t outstanding_ = 0;
};

} // namespace lll::sim

#endif // LLL_SIM_REQUEST_HH
