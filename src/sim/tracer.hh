/**
 * @file
 * Optional memory-request tracer.
 *
 * When attached to the memory controller it records every request that
 * reaches memory — timestamp, line address, type, originating core and
 * the latency it will observe — into a bounded ring.  Useful for
 * inspecting access-pattern structure (the random-vs-streaming
 * distinction the paper's classification hinges on) and for dumping
 * traces to CSV for external analysis.
 */

#ifndef LLL_SIM_TRACER_HH
#define LLL_SIM_TRACER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/request.hh"
#include "util/stats.hh"

namespace lll::sim
{

/**
 * Bounded trace of memory-level requests.
 */
class RequestTracer
{
  public:
    struct Event
    {
        Tick when = 0;
        uint64_t lineAddr = 0;
        ReqType type = ReqType::DemandLoad;
        int core = -1;
        double latencyNs = 0.0;   //!< 0 for writebacks
    };

    /** @param capacity ring size; older events are overwritten. */
    explicit RequestTracer(size_t capacity = 1 << 16)
        : capacity_(capacity)
    {
        ring_.reserve(capacity_);
    }

    void
    record(Tick when, uint64_t line_addr, ReqType type, int core,
           double latency_ns)
    {
        Event ev{when, line_addr, type, core, latency_ns};
        if (ring_.size() < capacity_) {
            ring_.push_back(ev);
        } else {
            ring_[head_] = ev;
            head_ = (head_ + 1) % capacity_;
        }
        ++total_;
    }

    /** Events in arrival order (oldest first). */
    std::vector<Event>
    events() const
    {
        std::vector<Event> out;
        out.reserve(ring_.size());
        for (size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(head_ + i) % ring_.size()]);
        return out;
    }

    /** Total recorded since construction (including overwritten). */
    uint64_t total() const { return total_; }
    size_t size() const { return ring_.size(); }
    size_t capacity() const { return capacity_; }

    void
    clear()
    {
        ring_.clear();
        head_ = 0;
        total_ = 0;
    }

    /** Write the retained window as CSV (when_ns,line,type,core,lat). */
    std::string toCsv() const;

    /**
     * The retained window as a JSON value, suitable for splicing into
     * obs::exportJson() as an extra section:
     * `{"total": N, "events": [{"when_ns": ..., ...}, ...]}`.
     */
    std::string toJson() const;

    /**
     * Fraction of retained events whose line address is within
     * @p window lines of the previous event from the same core — a
     * crude spatial-locality score (1.0 = perfectly streaming).
     */
    double localityScore(unsigned window = 8) const;

  private:
    size_t capacity_;
    std::vector<Event> ring_;
    size_t head_ = 0;
    uint64_t total_ = 0;
};

} // namespace lll::sim

#endif // LLL_SIM_TRACER_HH
