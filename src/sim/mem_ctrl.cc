#include "sim/mem_ctrl.hh"

#include <algorithm>

#include "sim/cache.hh"
#include "sim/tracer.hh"
#include "util/logging.hh"

namespace lll::sim
{

void
MemCtrl::MemStats::reset()
{
    readLines.reset();
    writeLines.reset();
    demandReadLines.reset();
    hwPrefetchLines.reset();
    swPrefetchLines.reset();
    readLatencyNs.reset();
    readLatencyHist.reset();
    busyTicks = 0;
}

MemCtrl::MemCtrl(const Params &params, EventQueue &eq, RequestPool &pool)
    : params_(params), eq_(eq), pool_(pool)
{
    lll_assert(params_.peakGBs > 0 && params_.bankServiceNs > 0,
               "memory controller needs positive bandwidth and service");
    unsigned banks = params_.banksOverride;
    if (banks == 0) {
        // banks * lineBytes / serviceNs == peak GB/s
        double b = params_.peakGBs * params_.bankServiceNs /
                   static_cast<double>(params_.lineBytes);
        banks = static_cast<unsigned>(b + 0.5);
    }
    lll_assert(banks > 0, "derived zero banks; raise bankServiceNs");
    banks_.assign(banks, 0);
    frontLat_ = nsToTicks(params_.frontLatencyNs);
    backLat_ = nsToTicks(params_.backLatencyNs);
    serviceLat_ = nsToTicks(params_.bankServiceNs);
}

unsigned
MemCtrl::bankOf(uint64_t lineAddr) const
{
    // Strong mix so strided streams spread across banks, like real
    // controllers' address-interleave hashing.
    uint64_t x = lineAddr;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<unsigned>(x % banks_.size());
}

bool
MemCtrl::tryAccess(MemRequest *req)
{
    const Tick now = eq_.now();
    const unsigned bank = bankOf(req->lineAddr);

    Tick arrive = now + frontLat_;
    Tick start = std::max(arrive, banks_[bank]);
    Tick done = start + serviceLat_;
    LLL_INVARIANT(done > banks_[bank],
                  "%s: bank %u busy-until time not advancing",
                  params_.name.c_str(), bank);
    LLL_INVARIANT(outstanding_.current() >= 0.0,
                  "%s: negative outstanding-read level",
                  params_.name.c_str());
    banks_[bank] = done;
    stats_.busyTicks += serviceLat_;

    if (req->type == ReqType::Writeback) {
        if (tracer_)
            tracer_->record(now, req->lineAddr, req->type, req->core, 0.0);
        ++stats_.writeLines;
        MemRequest *wb = req;
        RequestPool *pool = &pool_;
        eq_.schedule(done, [pool, wb] { pool->free(wb); });
        return true;
    }

    ++stats_.readLines;
    switch (req->type) {
      case ReqType::HwPrefetch:
        ++stats_.hwPrefetchLines;
        break;
      case ReqType::SwPrefetch:
        ++stats_.swPrefetchLines;
        break;
      default:
        ++stats_.demandReadLines;
        break;
    }

    outstanding_.add(now, 1.0);

    Tick resp = done + backLat_;
    double lat_ns = ticksToNs(resp - now);
    LLL_DEBUG(memctrl, "read line %llu bank %u lat %.1f ns",
              static_cast<unsigned long long>(req->lineAddr), bank, lat_ns);
    stats_.readLatencyNs.sample(lat_ns);
    stats_.readLatencyHist.sample(lat_ns);
    if (tracer_)
        tracer_->record(now, req->lineAddr, req->type, req->core, lat_ns);

    lll_assert(req->origin != nullptr, "memory read without origin cache");
    MemRequest *fill = req;
    eq_.schedule(resp, fillPrio(*fill->origin, fill->lineAddr),
                 [this, fill] {
                     outstanding_.add(eq_.now(), -1.0);
                     fill->origin->handleFill(fill);
                 });
    return true;
}

void
MemCtrl::addRetryWaiter(EventFn cb)
{
    // The controller never refuses, so a retry can fire immediately; this
    // path is only reachable through misuse.
    eq_.scheduleIn(0, std::move(cb));
}

double
MemCtrl::utilization(Tick window_start, Tick now) const
{
    if (now <= window_start)
        return 0.0;
    double window = static_cast<double>(now - window_start);
    return static_cast<double>(stats_.busyTicks) /
           (window * static_cast<double>(banks_.size()));
}

double
MemCtrl::achievedGBs(Tick window_start, Tick now) const
{
    if (now <= window_start)
        return 0.0;
    double bytes = static_cast<double>(stats_.readLines.value() +
                                       stats_.writeLines.value()) *
                   params_.lineBytes;
    double ns = ticksToNs(now - window_start);
    return bytes / ns;   // bytes/ns == GB/s
}

void
MemCtrl::resetStats(Tick now)
{
    stats_.reset();
    outstanding_.reset(now);
}

unsigned
MemCtrl::busyBanks(Tick now) const
{
    unsigned busy = 0;
    for (Tick until : banks_)
        busy += until > now ? 1 : 0;
    return busy;
}

double
MemCtrl::bytesTransferred() const
{
    return static_cast<double>(stats_.readLines.value() +
                               stats_.writeLines.value()) *
           params_.lineBytes;
}

void
MemCtrl::registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix,
                         std::vector<std::string> &names) const
{
    auto add = [&](const char *suffix, obs::GaugeMetric::Reader reader,
                   obs::GaugeMode mode, bool sampled) {
        std::string name = prefix + suffix;
        obs::MetricRegistry::GaugeOptions opt;
        opt.sampled = sampled;
        reg.registerGauge(name, std::move(reader), mode, opt);
        names.push_back(std::move(name));
    };
    // bytes per ns == GB/s, so the per-ns rate needs no scaling.
    add(".bw_gbps", [this] { return bytesTransferred(); },
        obs::GaugeMode::Rate, true);
    add(".queue_depth", [this] { return outstanding_.current(); },
        obs::GaugeMode::Callback, true);
    add(".busy_banks",
        [this] { return static_cast<double>(busyBanks(eq_.now())); },
        obs::GaugeMode::Callback, true);
    add(".banks", [this] { return static_cast<double>(banks_.size()); },
        obs::GaugeMode::Callback, false);
    add(".read_lines",
        [this] { return static_cast<double>(stats_.readLines.value()); },
        obs::GaugeMode::Callback, false);
    add(".write_lines",
        [this] { return static_cast<double>(stats_.writeLines.value()); },
        obs::GaugeMode::Callback, false);
    add(".hw_prefetch_lines",
        [this] {
            return static_cast<double>(stats_.hwPrefetchLines.value());
        },
        obs::GaugeMode::Callback, false);
    add(".sw_prefetch_lines",
        [this] {
            return static_cast<double>(stats_.swPrefetchLines.value());
        },
        obs::GaugeMode::Callback, false);
}

} // namespace lll::sim
