/**
 * @file
 * Core compute model shared by the SMT threads of one core.
 *
 * Two constraints shape compute throughput, matching how SMT behaves in
 * the paper's case studies:
 *
 *  - a per-thread pipeline rate (`singleThreadRate`): one thread alone
 *    cannot retire more than this fraction of the core's work per cycle
 *    (dependences, issue restrictions).  This is why SMT helps
 *    compute-bound codes like CoMD on KNL;
 *  - an aggregate capacity (`computeCapacity`): all threads together
 *    cannot exceed it, so SMT gains saturate once the core is full.
 */

#ifndef LLL_SIM_CORE_MODEL_HH
#define LLL_SIM_CORE_MODEL_HH

#include <array>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "sim/event_queue.hh"
#include "util/stats.hh"

namespace lll::sim
{

/**
 * One physical core: a compute server shared by its hardware threads.
 */
class CoreModel
{
  public:
    struct Params
    {
        int id = 0;
        double freqGHz = 2.0;
        /**
         * Aggregate compute throughput (work-cycles per core cycle) with
         * k active hardware threads, indexed by k (entry 0 unused).
         * Entry 1 is what one thread alone sustains; the curve rising
         * with k is precisely why SMT pays on narrow cores like KNL.
         * Zero entries inherit the previous one.
         */
        std::array<double, 5> smtCapacity{0.0, 0.85, 1.0, 0.0, 0.0};
        /** Hardware threads on this core. */
        unsigned threads = 1;
    };
    static_assert(std::tuple_size_v<decltype(Params::smtCapacity)> ==
                      kMaxSmtWays + 1,
                  "smtCapacity indexes 1..kMaxSmtWays: keep it in sync "
                  "with the schedThreadKey packing ceiling");

    CoreModel(const Params &params, EventQueue &eq);

    /**
     * Spend @p cycles of compute on behalf of hardware thread @p thread,
     * then invoke @p done.  Requests from one thread must be issued
     * sequentially (the thread model guarantees program order).
     */
    void compute(unsigned thread, double cycles, EventFn done);

    /** Duration of one core cycle in ticks. */
    Tick period() const { return period_; }

    const Params &params() const { return params_; }

    /** Ticks the shared compute server has been busy since reset. */
    Tick busyTicks() const { return busyTicks_; }

    /** Ticks threads spent waiting on the busy server since reset. */
    Tick stallTicks() const { return stallTicks_; }

    void resetStats();

    /**
     * Publish compute-server metrics under @p prefix.  busy_frac and
     * stall_frac are sampler-driven rates (fraction of wall time the
     * server was busy / threads were queued between snapshots).
     */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix,
                         std::vector<std::string> &names) const;

  private:
    Params params_;
    EventQueue &eq_;
    Tick period_;
    double capacity_;          //!< aggregate rate at configured threads
    double singleThreadRate_;  //!< per-thread pipeline rate
    Tick serverFreeAt_ = 0;
    std::vector<Tick> threadGate_;
    Tick busyTicks_ = 0;
    Tick stallTicks_ = 0;
};

} // namespace lll::sim

#endif // LLL_SIM_CORE_MODEL_HH
