/**
 * @file
 * Bank-parallel memory controller.
 *
 * Peak bandwidth equals banks * lineBytes / bankServiceNs; the idle
 * latency is frontLatencyNs + bankServiceNs + backLatencyNs.  Requests
 * hash to a bank and queue FCFS behind it, so loaded latency *emerges*
 * from contention — producing the rising bandwidth→latency curve that the
 * paper's X-Mem-based methodology measures and Little's law consumes.
 */

#ifndef LLL_SIM_MEM_CTRL_HH
#define LLL_SIM_MEM_CTRL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "sim/event_queue.hh"
#include "sim/mem_level.hh"
#include "sim/request.hh"
#include "util/stats.hh"

namespace lll::sim
{

class Cache;
class RequestTracer;

/**
 * The DRAM/HBM/MCDRAM model at the bottom of the hierarchy.
 */
class MemCtrl : public MemLevel
{
  public:
    struct Params
    {
        std::string name = "mem";
        double peakGBs = 128.0;      //!< theoretical peak bandwidth
        double frontLatencyNs = 25.0; //!< uncore/directory, request path
        double bankServiceNs = 24.0; //!< per-line occupancy of one bank
        double backLatencyNs = 4.0;  //!< response path
        unsigned lineBytes = 64;
        /** Banks are derived from peak bandwidth unless overridden. */
        unsigned banksOverride = 0;
    };

    struct MemStats
    {
        Counter readLines;
        Counter writeLines;
        Counter demandReadLines;     //!< reads triggered by demand misses
        Counter hwPrefetchLines;
        Counter swPrefetchLines;
        Average readLatencyNs;       //!< arrival → response, reads only
        /** Full latency distribution (5 ns buckets). */
        Histogram readLatencyHist{5.0, 512};
        uint64_t busyTicks = 0;      //!< sum of bank service time

        void reset();
    };

    MemCtrl(const Params &params, EventQueue &eq, RequestPool &pool);

    // MemLevel interface.  The controller never refuses a request.
    bool tryAccess(MemRequest *req) override;
    void addRetryWaiter(EventFn cb) override;

    /** Attach an optional request tracer (null to detach). */
    void setTracer(RequestTracer *tracer) { tracer_ = tracer; }

    const Params &params() const { return params_; }
    unsigned banks() const { return static_cast<unsigned>(banks_.size()); }
    const MemStats &stats() const { return stats_; }

    /** Outstanding-request level, for the TMA-style occupancy heuristic. */
    double avgOutstanding(Tick window_start, Tick now) const
    {
        return outstanding_.mean(window_start, now);
    }

    /** Reads currently in flight (instantaneous). */
    double outstandingNow() const { return outstanding_.current(); }

    /** Banks still busy at @p now — the channel-queue depth proxy. */
    unsigned busyBanks(Tick now) const;

    /** Total bytes moved (reads + writes) since the last stats reset. */
    double bytesTransferred() const;

    /**
     * Publish controller metrics under @p prefix.  Achieved bandwidth,
     * outstanding reads and busy banks are sampler-driven time series;
     * line counts snapshot at export.
     */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix,
                         std::vector<std::string> &names) const;

    /** Fraction of bank-time busy over the window (0..1). */
    double utilization(Tick window_start, Tick now) const;

    /** Achieved bandwidth in GB/s over the window. */
    double achievedGBs(Tick window_start, Tick now) const;

    void resetStats(Tick now);

  private:
    unsigned bankOf(uint64_t lineAddr) const;

    Params params_;
    EventQueue &eq_;
    RequestPool &pool_;
    RequestTracer *tracer_ = nullptr;
    std::vector<Tick> banks_;       //!< per-bank busy-until time
    Tick frontLat_;
    Tick backLat_;
    Tick serviceLat_;
    MemStats stats_;
    TimeWeightedStat outstanding_;
};

} // namespace lll::sim

#endif // LLL_SIM_MEM_CTRL_HH
