#include "sim/mshr_queue.hh"

#include "util/logging.hh"

namespace lll::sim
{

MshrQueue::MshrQueue(std::string name, unsigned size)
    : name_(std::move(name)), size_(size)
{
    unsigned reserve = size_ ? size_ : 64;
    entries_.resize(reserve);
    freeList_.reserve(reserve);
    for (unsigned i = 0; i < reserve; ++i)
        freeList_.push_back(reserve - 1 - i);
    index_.reserve(reserve * 2);
}

Mshr *
MshrQueue::lookup(uint64_t lineAddr)
{
    auto it = index_.find(lineAddr);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

Mshr *
MshrQueue::allocate(uint64_t lineAddr, ReqType origin, Tick now)
{
    lll_assert(!full(), "%s: allocate on full MSHR queue", name_.c_str());
    lll_assert(index_.find(lineAddr) == index_.end(),
               "%s: duplicate MSHR for line %llu", name_.c_str(),
               static_cast<unsigned long long>(lineAddr));

    if (freeList_.empty()) {
        // Unbounded queue (size_ == 0) growing beyond its reserve.  The
        // entries_ vector may reallocate, which is safe because no Mshr
        // pointers are held across event boundaries for unbounded queues
        // only when resized here; to keep pointer stability we grow via
        // indices instead.
        unsigned old = static_cast<unsigned>(entries_.size());
        entries_.resize(old * 2);
        for (unsigned i = old; i < old * 2; ++i)
            freeList_.push_back(old * 2 - 1 - (i - old));
    }

    unsigned idx = freeList_.back();
    freeList_.pop_back();
    Mshr &mshr = entries_[idx];
    mshr.lineAddr = lineAddr;
    mshr.allocated = now;
    mshr.originType = origin;
    mshr.targets.clear();
    mshr.inUse = true;
    index_[lineAddr] = idx;
    ++used_;
    ++allocations_;
    LLL_INVARIANT(size_ == 0 || used_ <= size_,
                  "%s: occupancy %u exceeds capacity %u", name_.c_str(),
                  used_, size_);
    LLL_INVARIANT(index_.size() == used_,
                  "%s: index/occupancy mismatch (%zu vs %u)",
                  name_.c_str(), index_.size(), used_);
    occupancy_.set(now, used_);
    LLL_DEBUG(mshr, "%s: allocate line %llu (%u/%u in use)", name_.c_str(),
              static_cast<unsigned long long>(lineAddr), used_, size_);
    return &mshr;
}

void
MshrQueue::deallocate(Mshr *mshr, Tick now)
{
    lll_assert(mshr && mshr->inUse, "%s: deallocating unused MSHR",
               name_.c_str());
    lll_assert(mshr->targets.empty(), "%s: deallocating MSHR with targets",
               name_.c_str());
    auto it = index_.find(mshr->lineAddr);
    lll_assert(it != index_.end(), "%s: MSHR not indexed", name_.c_str());
    unsigned idx = it->second;
    lll_assert(&entries_[idx] == mshr, "%s: MSHR index mismatch",
               name_.c_str());
    lll_assert(used_ > 0, "%s: deallocate on empty queue", name_.c_str());
    index_.erase(it);
    mshr->inUse = false;
    freeList_.push_back(idx);
    --used_;
    LLL_INVARIANT(index_.size() == used_,
                  "%s: index/occupancy mismatch (%zu vs %u)",
                  name_.c_str(), index_.size(), used_);
    occupancy_.set(now, used_);
}

void
MshrQueue::resetStats(Tick now)
{
    occupancy_.reset(now);
    fullStalls_.reset();
    allocations_.reset();
}

void
MshrQueue::registerMetrics(obs::MetricRegistry &reg,
                           const std::string &prefix,
                           std::vector<std::string> &names) const
{
    auto add = [&](const char *suffix, obs::GaugeMetric::Reader reader,
                   bool sampled) {
        std::string name = prefix + suffix;
        obs::MetricRegistry::GaugeOptions opt;
        opt.sampled = sampled;
        reg.registerGauge(name, std::move(reader),
                          obs::GaugeMode::Callback, opt);
        names.push_back(std::move(name));
    };
    add(".occupancy",
        [this] { return static_cast<double>(used_); }, true);
    add(".size", [this] { return static_cast<double>(size_); }, false);
    add(".max_occupancy", [this] { return occupancy_.max(); }, false);
    add(".full_stalls",
        [this] { return static_cast<double>(fullStalls_.value()); },
        false);
    add(".allocations",
        [this] { return static_cast<double>(allocations_.value()); },
        false);
}

} // namespace lll::sim
