/**
 * @file
 * Kernel specifications: the simulator-facing description of a routine.
 *
 * A KernelSpec characterizes the *dominant routine* of an application the
 * way the paper does: a mix of address streams (random / sequential /
 * strided, with optional temporal reuse), the compute work between memory
 * operations, and the number of independent loads the code exposes (its
 * achievable MLP before hardware limits).  The workload module builds
 * specs for the six paper applications and rewrites them under each
 * program optimization.
 */

#ifndef LLL_SIM_KERNEL_SPEC_HH
#define LLL_SIM_KERNEL_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lll::sim
{

/**
 * One address stream of a kernel.
 */
struct StreamDesc
{
    enum class Kind
    {
        Sequential,   //!< consecutive lines (unit stride)
        Strided,      //!< fixed stride in lines
        Random,       //!< uniform random within the footprint
    };

    Kind kind = Kind::Sequential;

    /** Working-set size of this stream, in cache lines (per thread unless
     *  sharedAcrossThreads). */
    uint64_t footprintLines = 1 << 20;

    /** Relative share of the kernel's memory operations. */
    double weight = 1.0;

    int strideLines = 1;

    /** Stores (write-allocate + dirty; eventually writeback traffic). */
    bool store = false;

    /** Threads of the same core address the same copy (e.g. a shared
     *  lookup table); otherwise each thread gets a private region. */
    bool sharedAcrossThreads = false;

    /** Fraction of this stream's accesses that re-touch a recently used
     *  line instead of advancing (temporal locality knob). */
    double reuseFraction = 0.0;

    /** How far back re-touches reach, in this stream's positions. */
    unsigned reuseWindow = 256;

    /** Software prefetch targets this stream when the kernel enables it. */
    bool swPrefetchable = false;
};

/**
 * A complete routine model.
 */
struct KernelSpec
{
    std::string name = "kernel";

    std::vector<StreamDesc> streams;

    /** Average core compute cycles preceding each memory op. */
    double computeCyclesPerOp = 1.0;

    /** Demand loads the code keeps in flight (ILP/unrolled MLP), before
     *  hardware limits (load queue, MSHRs) cap it. */
    unsigned window = 8;

    /** Logical work units per memory op; normalizes throughput across
     *  optimization variants that change the op count for the same job. */
    double workPerOp = 1.0;

    /** Software prefetch into the L2 for swPrefetchable streams. */
    bool swPrefetchL2 = false;
    unsigned swPrefetchDistance = 24;   //!< ops ahead of the demand op
    double swPrefetchOverheadCycles = 1.0;
};

} // namespace lll::sim

#endif // LLL_SIM_KERNEL_SPEC_HH
