#include "sim/system.hh"

#include <algorithm>
#include <sstream>

#include "obs/span.hh"
#include "util/logging.hh"
#include "util/names.hh"

namespace lll::sim
{

System::System(const SystemParams &params, const KernelSpec &spec)
    : System(params, std::vector<PhaseSpec>{PhaseSpec{spec, 0}})
{
}

System::System(const SystemParams &params, std::vector<PhaseSpec> phases)
    : params_(params), phases_(std::move(phases))
{
    lll_assert(!phases_.empty(), "system needs at least one phase");
    lll_assert(params_.cores >= 1, "system needs at least one core");
    lll_assert(params_.threadsPerCore >= 1, "need at least one thread");

    eq_.setTieBreakSeed(params_.tieBreakSeed);

    MemCtrl::Params mem_params = params_.mem;
    mem_params.lineBytes = params_.lineBytes;
    mem_ = std::make_unique<MemCtrl>(mem_params, eq_, pool_);

    MemLevel *below_l2 = mem_.get();
    if (params_.hasL3) {
        Cache::Params l3p = params_.l3;
        l3p.level = 3;
        l3p.schedActor = 1;
        l3_ = std::make_unique<Cache>(l3p, eq_, pool_);
        l3_->setDownstream(mem_.get());
        below_l2 = l3_.get();
    }

    for (int c = 0; c < params_.cores; ++c) {
        CoreModel::Params cp;
        cp.id = c;
        cp.freqGHz = params_.freqGHz;
        cp.smtCapacity = params_.smtCapacity;
        cp.threads = params_.threadsPerCore;
        cores_.push_back(std::make_unique<CoreModel>(cp, eq_));

        Cache::Params l2p = params_.l2;
        l2p.name = params_.l2.name + "." + std::to_string(c);
        l2p.level = 2;
        l2p.schedActor = 2 + 2 * static_cast<unsigned>(c);
        l2s_.push_back(std::make_unique<Cache>(l2p, eq_, pool_));
        l2s_.back()->setDownstream(below_l2);
        if (l3_)
            l2s_.back()->setDownstreamCache(l3_.get());

        if (params_.l2PrefetcherEnabled) {
            StreamPrefetcher::Params pfp = params_.pf;
            pfp.name = params_.pf.name + "." + std::to_string(c);
            pfs_.push_back(std::make_unique<StreamPrefetcher>(
                pfp, *l2s_.back()));
            l2s_.back()->setPrefetcher(pfs_.back().get());
        } else {
            pfs_.push_back(nullptr);
        }

        Cache::Params l1p = params_.l1;
        l1p.name = params_.l1.name + "." + std::to_string(c);
        l1p.level = 1;
        l1p.schedActor = 3 + 2 * static_cast<unsigned>(c);
        l1s_.push_back(std::make_unique<Cache>(l1p, eq_, pool_));
        l1s_.back()->setDownstream(l2s_.back().get());

        for (unsigned t = 0; t < params_.threadsPerCore; ++t) {
            ThreadContext::Params tp;
            tp.core = c;
            tp.thread = t;
            tp.lqSize = params_.lqSize;
            tp.threadSeed = params_.seed * 100003 +
                            static_cast<uint64_t>(c) *
                                params_.threadsPerCore + t + 1;
            tp.coreSeed = params_.seed * 100003 +
                          static_cast<uint64_t>(c) + 1;
            threads_.push_back(std::make_unique<ThreadContext>(
                tp, phases_, eq_, pool_, *cores_.back(), *l1s_.back(),
                *l2s_.back()));
        }
    }
}

System::~System()
{
    // The registry outlives this node: keep its gauges readable by
    // freezing every callback at its final value.
    if (sampler_)
        sampler_->disarm();
    if (obsRegistry_) {
        for (const std::string &name : obsNames_)
            obsRegistry_->freezeGauge(name);
    }
}

void
System::attachObservability(obs::MetricRegistry &registry,
                            obs::Sampler::Params params)
{
    lll_assert(!sampler_, "observability already attached");
    obsRegistry_ = &registry;
    sampler_ = std::make_unique<obs::Sampler>(registry, params);

    mem_->registerMetrics(registry, util::names::kSimMemctrlPrefix, obsNames_);
    if (l3_) {
        l3_->registerMetrics(registry, util::names::kSimCacheL3Prefix, obsNames_);
        l3_->mshrs().registerMetrics(registry, util::names::kSimMshrL3Prefix, obsNames_);
    }
    for (int c = 0; c < params_.cores; ++c) {
        const std::string ci = std::to_string(c);
        l1s_[c]->mshrs().registerMetrics(registry, util::names::kSimMshrL1Prefix + ci,
                                         obsNames_);
        l2s_[c]->mshrs().registerMetrics(registry, util::names::kSimMshrL2Prefix + ci,
                                         obsNames_);
        l1s_[c]->registerMetrics(registry, util::names::kSimCacheL1Prefix + ci,
                                 obsNames_);
        l2s_[c]->registerMetrics(registry, util::names::kSimCacheL2Prefix + ci,
                                 obsNames_);
        cores_[c]->registerMetrics(registry, util::names::kSimCorePrefix + ci, obsNames_);
    }

    obs::MetricRegistry::GaugeOptions rate;
    rate.sampled = true;
    registry.registerGauge(
        util::names::kSimEventqEventsPerNs,
        [this] { return static_cast<double>(eq_.processed()); },
        obs::GaugeMode::Rate, rate);
    obsNames_.push_back(util::names::kSimEventqEventsPerNs);

    scheduleSample();
}

void
System::scheduleSample()
{
    eq_.scheduleIn(sampler_->cadence(),
                   schedPrio(SchedBand::Housekeeping, 0), [this] {
                       if (!sampler_ || !sampler_->armed())
                           return;
                       sampler_->sample(eq_.now());
                       scheduleSample();
                   });
}

void
System::scheduleWatchdog()
{
    const Tick cadence = nsToTicks(params_.watchdog.cadenceUs * 1000.0);
    eq_.scheduleIn(cadence, schedPrio(SchedBand::Housekeeping, 1),
                   [this, cadence] {
        if (wdTripped_)
            return;
        const uint64_t delta = eq_.processed() - wdLastProcessed_;
        wdLastProcessed_ = eq_.processed();
        // Net out housekeeping: this watchdog event plus however many
        // sampler ticks fit in one cadence.  Anything beyond that is
        // real simulation work.
        uint64_t housekeeping = 1;
        if (sampler_ && sampler_->armed())
            housekeeping += cadence / sampler_->cadence() + 1;
        if (delta > housekeeping) {
            wdStrikes_ = 0;
        } else if (++wdStrikes_ >= params_.watchdog.maxStrikes) {
            wdTripped_ = true;
            wdDiagnostic_ = diagnosticSnapshot();
            if (obsRegistry_) {
                ++obsRegistry_->counter("sim_errors_total");
                obsRegistry_->annotate(util::names::kSimWatchdogStall,
                                       wdDiagnostic_);
            }
            eq_.requestStop();
            return;
        }
        scheduleWatchdog();
    });
}

std::string
System::diagnosticSnapshot() const
{
    std::ostringstream out;
    out << params_.name << " @" << ticksToNs(eq_.now()) << "ns:"
        << " events=" << eq_.processed()
        << " pending=" << eq_.pending()
        << " mem_outstanding=" << mem_->outstandingNow();
    out << " l1_mshrs=[";
    for (int c = 0; c < params_.cores; ++c)
        out << (c ? "," : "") << l1s_[c]->mshrs().used();
    out << "] l2_mshrs=[";
    for (int c = 0; c < params_.cores; ++c)
        out << (c ? "," : "") << l2s_[c]->mshrs().used();
    out << "]";
    if (l3_)
        out << " l3_mshrs=" << l3_->mshrs().used();
    return out.str();
}

ThreadContext &
System::thread(int core, unsigned t)
{
    return *threads_.at(static_cast<size_t>(core) * params_.threadsPerCore +
                        t);
}

StreamPrefetcher *
System::prefetcher(int core)
{
    return pfs_.at(core).get();
}

void
System::resetStats()
{
    const Tick now = eq_.now();
    mem_->resetStats(now);
    if (l3_)
        l3_->resetStats(now);
    for (auto &c : l2s_)
        c->resetStats(now);
    for (auto &c : l1s_)
        c->resetStats(now);
    for (auto &pf : pfs_) {
        if (pf)
            pf->resetStats();
    }
    for (auto &c : cores_)
        c->resetStats();
    for (auto &t : threads_)
        t->resetStats();
}

util::Result<RunResult>
System::runChecked(double warmup_us, double measure_us)
{
    if (!(measure_us > 0)) {
        return util::Status::error(util::ErrorCode::InvalidArgument,
                                   "measurement window must be positive "
                                   "(got %g us)",
                                   measure_us);
    }

    if (!started_) {
        started_ = true;
        for (auto &t : threads_)
            t->start();
    }
    if (params_.watchdog.enabled && !wdScheduled_) {
        wdScheduled_ = true;
        wdLastProcessed_ = eq_.processed();
        scheduleWatchdog();
    }

    const Tick warmup_ticks = nsToTicks(warmup_us * 1000.0);
    const Tick measure_ticks = nsToTicks(measure_us * 1000.0);

    if (warmup_ticks > 0) {
        LLL_SPAN(util::names::kSimWarmupSpan);
        eq_.runUntil(eq_.now() + warmup_ticks);
    }
    if (wdTripped_) {
        return util::Status::error(
            util::ErrorCode::DeadlineExceeded,
            "watchdog: event queue stopped draining during warmup "
            "(%u strikes of %.1f us); %s",
            wdStrikes_, params_.watchdog.cadenceUs,
            wdDiagnostic_.c_str());
    }
    resetStats();
    const Tick t0 = eq_.now();
    const uint64_t events0 = eq_.processed();
    {
        LLL_SPAN(util::names::kSimMeasureSpan);
        eq_.runUntil(t0 + measure_ticks);
    }
    if (wdTripped_) {
        return util::Status::error(
            util::ErrorCode::DeadlineExceeded,
            "watchdog: event queue stopped draining (%u strikes of "
            "%.1f us); %s",
            wdStrikes_, params_.watchdog.cadenceUs, wdDiagnostic_.c_str());
    }
    const Tick t1 = eq_.now();

    // Request conservation: every pooled request is either parked in an
    // MSHR, queued in the controller, or owned by a thread — the
    // checked-out population can only ever be transiently different
    // from what the components account for, never negative or runaway.
    LLL_INVARIANT(pool_.outstanding() >= 0,
                  "request pool underflow (%lld outstanding)",
                  static_cast<long long>(pool_.outstanding()));
    LLL_INVARIANT(
        pool_.outstanding() <=
            static_cast<int64_t>(params_.cores) *
                    (static_cast<int64_t>(params_.threadsPerCore) *
                         params_.lqSize +
                     params_.l1.mshrs + params_.l2.mshrs) +
                8192,
        "request population exploded: %lld outstanding",
        static_cast<long long>(pool_.outstanding()));

    RunResult r;
    r.measureSeconds = ticksToNs(t1 - t0) * 1e-9;
    for (auto &t : threads_) {
        r.workDone += t->workDone();
        r.opsIssued += t->opsIssued();
        r.swPrefIssued += t->swPrefetchesIssued();
    }
    r.throughput = r.workDone / r.measureSeconds;

    const MemCtrl::MemStats &ms = mem_->stats();
    const double ns = ticksToNs(t1 - t0);
    r.memReadLines = ms.readLines.value();
    r.memWriteLines = ms.writeLines.value();
    r.memHwPrefetchLines = ms.hwPrefetchLines.value();
    r.memSwPrefetchLines = ms.swPrefetchLines.value();
    r.readGBs = static_cast<double>(r.memReadLines) * params_.lineBytes /
                ns;
    r.writeGBs = static_cast<double>(r.memWriteLines) * params_.lineBytes /
                 ns;
    r.totalGBs = r.readGBs + r.writeGBs;
    r.demandFraction =
        r.memReadLines
            ? static_cast<double>(ms.demandReadLines.value()) /
                  static_cast<double>(r.memReadLines)
            : 1.0;
    r.memUtilization = mem_->utilization(t0, t1);
    r.avgMemLatencyNs = ms.readLatencyNs.mean();
    r.p50MemLatencyNs = ms.readLatencyHist.percentile(0.50);
    r.p95MemLatencyNs = ms.readLatencyHist.percentile(0.95);
    r.p99MemLatencyNs = ms.readLatencyHist.percentile(0.99);
    r.avgMemOutstanding = mem_->avgOutstanding(t0, t1);

    for (int c = 0; c < params_.cores; ++c) {
        const MshrQueue &m1 = l1s_[c]->mshrs();
        const MshrQueue &m2 = l2s_[c]->mshrs();
        r.avgL1MshrOccupancy += m1.avgOccupancy(t0, t1);
        r.avgL2MshrOccupancy += m2.avgOccupancy(t0, t1);
        r.maxL1MshrOccupancy =
            std::max(r.maxL1MshrOccupancy, m1.maxOccupancy());
        r.maxL2MshrOccupancy =
            std::max(r.maxL2MshrOccupancy, m2.maxOccupancy());
        r.l1FullStalls += m1.fullStalls();
        r.l2FullStalls += m2.fullStalls();
        r.l1DemandMisses += l1s_[c]->stats().demandMisses.value();
        r.l1DemandHits += l1s_[c]->stats().demandHits.value();
        r.l2DemandMisses += l2s_[c]->stats().demandMisses.value();
        r.l2DemandHits += l2s_[c]->stats().demandHits.value();
        r.hwPrefUseful += l2s_[c]->stats().prefetchUseful.value();
        r.l2PrefetchDropped += l2s_[c]->stats().prefetchDropped.value();
        if (pfs_[c])
            r.hwPrefIssued += pfs_[c]->stats().issued.value();
    }
    r.avgL1MshrOccupancy /= params_.cores;
    r.avgL2MshrOccupancy /= params_.cores;

    r.eventsProcessed = eq_.processed() - events0;
    return r;
}

RunResult
System::run(double warmup_us, double measure_us)
{
    util::Result<RunResult> r = runChecked(warmup_us, measure_us);
    if (!r.ok())
        lll_fatal("%s", r.status().toString().c_str());
    return r.take();
}

} // namespace lll::sim
