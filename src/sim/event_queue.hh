/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue orders callbacks by (tick, priority,
 * insertion sequence).  One tick is one picosecond (see util/stats.hh),
 * which comfortably expresses core clocks from 1.4 to 2.1 GHz without
 * rounding drift over the millisecond-scale windows this project
 * simulates.
 *
 * The priority pins every same-tick ordering the model's outcome is
 * allowed to depend on.  Handlers that touch shared state (MSHR slots,
 * the core's shared issue server, controller bank queues, cache LRU
 * state) must schedule with a priority that totally orders them against
 * every other handler they can interact with — see SchedBand below.
 * Two events left at the *same* (tick, priority) thereby assert that
 * their handlers commute; nothing about the outcome may depend on which
 * pops first.
 *
 * That assertion is checkable.  For the determinism checker
 * (analysis/determinism.hh) the residual tie-break among equal
 * (tick, priority) events can be permuted with a seed: instead of the
 * raw insertion sequence, ties compare a seeded bijective mix of it.
 * Event timing and all pinned ordering are unchanged — only the pop
 * order of events that *claim* to commute moves — so any simulation
 * whose results shift under a nonzero seed has a handler whose effect
 * depends on unspecified scheduling order: a simulator race.
 */

#ifndef LLL_SIM_EVENT_QUEUE_HH
#define LLL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/logging.hh"
#include "util/stats.hh"

namespace lll::sim
{

/**
 * Same-tick scheduling bands, popped in enum order within one tick.
 * Resources are released before anyone claims them: fills first, then
 * in-flight miss traffic, then thread issue slots, with bookkeeping
 * last so it observes the tick's final state.
 */
enum class SchedBand : uint64_t
{
    Fill = 1,         //!< fill delivery into a cache (frees MSHRs)
    Send = 2,         //!< miss traffic moving downstream (claims
                      //!< downstream MSHRs / controller banks)
    Thread = 3,       //!< per-thread compute-done and op-complete
    Default = 4,      //!< unclassified (plain two-argument schedule())
    Housekeeping = 5, //!< sampler and watchdog
};

/**
 * Compose a scheduling priority: the band orders event *kinds* within
 * a tick, the 56-bit key orders actors within a band (component ids,
 * thread ids, line-address hashes).  Events that may interact must end
 * up with distinct priorities; events sharing one assert commutativity.
 */
constexpr uint64_t
schedPrio(SchedBand band, uint64_t key = 0)
{
    return (static_cast<uint64_t>(band) << 56) |
           (key & ((uint64_t{1} << 56) - 1));
}

/**
 * Arbitration key for events acting on behalf of one hardware thread
 * (lower key issues first at a tick: fixed-priority arbitration, like
 * a hardware arbiter).  thread -1 (a per-core agent such as the stream
 * prefetcher) sorts ahead of that core's threads.
 */
constexpr uint64_t
schedThreadKey(int core, int thread)
{
    return (static_cast<uint64_t>(core) + 1) * 8 +
           static_cast<uint64_t>(thread + 1);
}

/**
 * splitmix64 finalizer: a bijection on uint64_t, so distinct inputs
 * keep distinct outputs while the relative order is effectively
 * random.  Used both for the determinism checker's tie-break
 * permutation and to spread line addresses across priority keys.
 */
constexpr uint64_t
schedMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * The event queue: schedule() callbacks in the future, then run().
 *
 * Not thread safe; a System owns exactly one queue and all components
 * attached to that System share it.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Permute the pop order of equal-(tick, priority) events.  Seed 0
     * (default) keeps insertion order; any other value orders ties by
     * splitmix64(seq ^ seed) — a bijection, so the order is still a
     * total, deterministic one, just a different one per seed.  Must be
     * set before the first event is scheduled.
     */
    void
    setTieBreakSeed(uint64_t seed)
    {
        lll_assert(heap_.empty() && processed_ == 0,
                   "tie-break seed must be set before any event");
        tieSeed_ = seed;
    }

    uint64_t tieBreakSeed() const { return tieSeed_; }

    /**
     * Schedule @p cb to run at absolute time @p when (>= now), ordered
     * among same-tick events by @p prio (see schedPrio()).
     */
    void
    schedule(Tick when, uint64_t prio, Callback cb)
    {
        lll_assert(when >= now_, "scheduling in the past (%llu < %llu)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
        heap_.push(Item{when, prio, tieKey(seq_++), std::move(cb)});
    }

    /** Schedule @p cb at @p when in the Default band. */
    void
    schedule(Tick when, Callback cb)
    {
        schedule(when, schedPrio(SchedBand::Default), std::move(cb));
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Schedule @p cb @p delay ticks from now with priority @p prio. */
    void
    scheduleIn(Tick delay, uint64_t prio, Callback cb)
    {
        schedule(now_ + delay, prio, std::move(cb));
    }

    /**
     * Run events until the queue is empty or simulated time would pass
     * @p limit.  Events scheduled exactly at @p limit are processed.
     *
     * @return true if stopped because the limit was reached (more events
     *         remain), false if the queue drained.
     */
    bool
    runUntil(Tick limit)
    {
        stopRequested_ = false;
        while (!heap_.empty()) {
            if (stopRequested_) {
                stopRequested_ = false;
                return true;
            }
            const Item &top = heap_.top();
            if (top.when > limit) {
                now_ = limit;
                return true;
            }
            LLL_INVARIANT(top.when >= now_,
                          "event-queue time ran backwards (%llu < %llu)",
                          static_cast<unsigned long long>(top.when),
                          static_cast<unsigned long long>(now_));
            now_ = top.when;
            // Move the callback out before popping so the heap can be
            // safely mutated by the callback itself.
            Callback cb = std::move(const_cast<Item &>(top).cb);
            heap_.pop();
            ++processed_;
            cb();
        }
        now_ = std::max(now_, limit);
        return false;
    }

    /**
     * Ask the current runUntil() to return after the in-flight callback
     * (the watchdog uses this to abort a wedged run without unwinding
     * through event callbacks).
     */
    void requestStop() { stopRequested_ = true; }

    /** Number of events processed so far. */
    uint64_t processed() const { return processed_; }

    /** Number of events still pending. */
    size_t pending() const { return heap_.size(); }

  private:
    struct Item
    {
        Tick when;
        uint64_t prio; //!< pinned same-tick order (schedPrio)
        uint64_t key;  //!< tie-break: seq, or its seeded permutation
        Callback cb;

        bool
        operator>(const Item &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return key > o.key;
        }
    };

    uint64_t
    tieKey(uint64_t seq) const
    {
        return tieSeed_ == 0 ? seq : schedMix64(seq ^ tieSeed_);
    }

    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
    Tick now_ = 0;
    uint64_t seq_ = 0;
    uint64_t tieSeed_ = 0;
    uint64_t processed_ = 0;
    bool stopRequested_ = false;
};

} // namespace lll::sim

#endif // LLL_SIM_EVENT_QUEUE_HH
