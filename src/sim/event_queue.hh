/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue orders callbacks by (tick, priority,
 * insertion sequence).  One tick is one picosecond (see util/stats.hh),
 * which comfortably expresses core clocks from 1.4 to 2.1 GHz without
 * rounding drift over the millisecond-scale windows this project
 * simulates.
 *
 * The priority pins every same-tick ordering the model's outcome is
 * allowed to depend on.  Handlers that touch shared state (MSHR slots,
 * the core's shared issue server, controller bank queues, cache LRU
 * state) must schedule with a priority that totally orders them against
 * every other handler they can interact with — see SchedBand below.
 * Two events left at the *same* (tick, priority) thereby assert that
 * their handlers commute; nothing about the outcome may depend on which
 * pops first.
 *
 * That assertion is checkable.  For the determinism checker
 * (analysis/determinism.hh) the residual tie-break among equal
 * (tick, priority) events can be permuted with a seed: instead of the
 * raw insertion sequence, ties compare a seeded bijective mix of it.
 * Event timing and all pinned ordering are unchanged — only the pop
 * order of events that *claim* to commute moves — so any simulation
 * whose results shift under a nonzero seed has a handler whose effect
 * depends on unspecified scheduling order: a simulator race.
 *
 * Implementation (DESIGN.md §16): this queue is the simulator's inner
 * loop, so it avoids the two classic costs of std::priority_queue +
 * std::function designs.  Callbacks are stored in EventFn — a
 * small-buffer callable with no heap fallback, sized for the
 * bound-member-plus-pointer closures every component schedules, and
 * constructed in place at its final resting spot so the schedule path
 * never shuffles type-erased closures around.  The ordering structure
 * is two-level, following the calendar-queue literature: events inside
 * a near-future window (kWheelTicks) drop into a per-tick bucket —
 * O(1), no comparisons — with an occupancy bitmap whose
 * count-trailing-zeros scan is what fast-forwards runUntil() straight
 * to the next busy tick; events beyond the window wait in a flat
 * 4-ary min-heap whose 32-byte nodes pack (tick, priority) into one
 * 128-bit word plus a slot index into a recycled callback arena, so a
 * sift moves small trivially-copyable keys instead of closures.  When
 * the window empties it jumps to the heap's earliest tick and drains
 * every now-in-window event back into buckets.  Within one tick,
 * dispatch sorts the tick's bucket by (priority, tie) and invokes it
 * as a batch, re-merging whenever a callback schedules new same-tick
 * work that could order before a later priority class.
 */

#ifndef LLL_SIM_EVENT_QUEUE_HH
#define LLL_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/stats.hh"

namespace lll::sim
{

/**
 * Same-tick scheduling bands, popped in enum order within one tick.
 * Resources are released before anyone claims them: fills first, then
 * in-flight miss traffic, then thread issue slots, with bookkeeping
 * last so it observes the tick's final state.
 */
enum class SchedBand : uint64_t
{
    Fill = 1,         //!< fill delivery into a cache (frees MSHRs)
    Send = 2,         //!< miss traffic moving downstream (claims
                      //!< downstream MSHRs / controller banks)
    Thread = 3,       //!< per-thread compute-done and op-complete
    Default = 4,      //!< unclassified (plain two-argument schedule())
    Housekeeping = 5, //!< sampler and watchdog
};

/**
 * Compose a scheduling priority: the band orders event *kinds* within
 * a tick, the 56-bit key orders actors within a band (component ids,
 * thread ids, line-address hashes).  Events that may interact must end
 * up with distinct priorities; events sharing one assert commutativity.
 */
constexpr uint64_t
schedPrio(SchedBand band, uint64_t key = 0)
{
    return (static_cast<uint64_t>(band) << 56) |
           (key & ((uint64_t{1} << 56) - 1));
}

/**
 * The validator's SMT ceiling (sim/validator.cc): hardware thread ids
 * run 0..kMaxSmtWays-1, matching CoreModel::Params::smtCapacity whose
 * array has kMaxSmtWays+1 entries (index = active thread count).
 */
inline constexpr int kMaxSmtWays = 4;

/**
 * Arbitration key for events acting on behalf of one hardware thread
 * (lower key issues first at a tick: fixed-priority arbitration, like
 * a hardware arbiter).  thread -1 (a per-core agent such as the stream
 * prefetcher) sorts ahead of that core's threads.
 *
 * Packing invariant: each core owns a stride-8 run of keys and the
 * thread lands in slot thread+1 of that run, so slot 0 is the core's
 * agent (-1) and slots 1..kMaxSmtWays its hardware threads.  The
 * validator caps SMT at kMaxSmtWays ways, leaving slots 5..7 unused;
 * a wider config would silently collide with the *next* core's agent
 * slot and break pinned same-tick ordering, so the bound is asserted
 * here rather than assumed.
 */
constexpr uint64_t
schedThreadKey(int core, int thread)
{
    lll_assert(core >= -1, "schedThreadKey: core id %d below -1", core);
    lll_assert(thread >= -1 && thread < kMaxSmtWays,
               "schedThreadKey: thread id %d outside -1..%d — stride-8 "
               "packing would collide with the next core's agent slot",
               thread, kMaxSmtWays - 1);
    return (static_cast<uint64_t>(core) + 1) * 8 +
           static_cast<uint64_t>(thread + 1);
}

/**
 * splitmix64 finalizer: a bijection on uint64_t, so distinct inputs
 * keep distinct outputs while the relative order is effectively
 * random.  Used both for the determinism checker's tie-break
 * permutation and to spread line addresses across priority keys.
 */
constexpr uint64_t
schedMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Type-erased void() callable with fixed inline storage and *no* heap
 * fallback: a closure that does not fit is a compile error, not a
 * silent allocation on the schedule hot path.
 *
 * Storage contract (DESIGN.md §16): kInlineBytes covers every closure
 * the simulator schedules — a bound member function is one object
 * pointer, the largest call sites capture two pointers, and the
 * std::function-typed chains some tests build still fit because
 * std::function itself is 32 bytes (what *it* may heap-allocate is the
 * caller's business).  Captures must be nothrow-move-constructible;
 * closures over raw pointers (the common case) are trivially copyable
 * and move as a memcpy with no destructor bookkeeping at all.
 */
class EventFn
{
  public:
    /** Inline capture budget; sized for two-pointer closures and a
     *  whole std::function, and checked by static_assert per type. */
    static constexpr size_t kInlineBytes = 32;

    EventFn() noexcept = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                          std::is_invocable_r_v<void, D &>>>
    // NOLINTNEXTLINE(bugprone-forwarding-reference-overload)
    EventFn(F &&f)
    {
        static_assert(sizeof(D) <= kInlineBytes,
                      "closure exceeds EventFn inline storage: capture "
                      "pointers, not objects (or raise kInlineBytes)");
        static_assert(alignof(D) <= alignof(std::max_align_t),
                      "closure over-aligned for EventFn inline storage");
        static_assert(std::is_nothrow_move_constructible_v<D>,
                      "EventFn captures must be nothrow-movable");
        ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
        invoke_ = &invokeImpl<D>;
        // Trivial closures (raw-pointer captures) keep manage_ null:
        // moves degrade to memcpy and destruction to nothing.
        if constexpr (!std::is_trivially_copyable_v<D> ||
                      !std::is_trivially_destructible_v<D>) {
            manage_ = &manageImpl<D>;
        }
    }

    EventFn(EventFn &&o) noexcept { stealFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            destroy();
            stealFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { destroy(); }

    explicit operator bool() const noexcept { return invoke_ != nullptr; }

    void
    operator()()
    {
        lll_assert(invoke_ != nullptr, "invoking an empty EventFn");
        invoke_(buf_);
    }

  private:
    template <typename D>
    static void
    invokeImpl(void *p)
    {
        (*static_cast<D *>(p))();
    }

    /** dst != null: move-construct *dst from *src; always destroy *src. */
    template <typename D>
    static void
    manageImpl(void *dst, void *src)
    {
        D *s = static_cast<D *>(src);
        if (dst != nullptr)
            ::new (dst) D(std::move(*s));
        s->~D();
    }

    void
    stealFrom(EventFn &o) noexcept
    {
        invoke_ = o.invoke_;
        manage_ = o.manage_;
        if (manage_ != nullptr)
            manage_(buf_, o.buf_);
        else if (invoke_ != nullptr)
            std::memcpy(buf_, o.buf_, kInlineBytes);
        o.invoke_ = nullptr;
        o.manage_ = nullptr;
    }

    void
    destroy() noexcept
    {
        if (manage_ != nullptr)
            manage_(nullptr, buf_);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void (*invoke_)(void *) = nullptr;
    void (*manage_)(void *dst, void *src) = nullptr;
};

/**
 * The event queue: schedule() callbacks in the future, then run().
 *
 * Not thread safe; a System owns exactly one queue and all components
 * attached to that System share it.
 */
class EventQueue
{
  public:
    using Callback = EventFn;

    /**
     * Near-future window: events fewer than this many ticks out take
     * the bucketed O(1) path; later ones overflow to the heap until
     * the window reaches them.  16384 ticks (~16 ns, a few dozen core
     * cycles) covers every cache-level access latency; only memory
     * responses and housekeeping ride the heap.
     */
    static constexpr Tick kWheelTicks = 16384;

    EventQueue() : buckets_(kWheelTicks) {}

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Permute the pop order of equal-(tick, priority) events.  Seed 0
     * (default) keeps insertion order; any other value orders ties by
     * splitmix64(seq ^ seed) — a bijection, so the order is still a
     * total, deterministic one, just a different one per seed.  Must be
     * set before the first event is scheduled.
     */
    void
    setTieBreakSeed(uint64_t seed)
    {
        lll_assert(pending() == 0 && processed_ == 0,
                   "tie-break seed must be set before any event");
        tieSeed_ = seed;
    }

    uint64_t tieBreakSeed() const { return tieSeed_; }

    /**
     * Schedule @p cb to run at absolute time @p when (>= now), ordered
     * among same-tick events by @p prio (see schedPrio()).
     *
     * A callback may schedule at the tick it is running in, but only
     * at a priority >= its own class: within a tick, bands progress
     * forward (a fill may queue thread work, never another fill ahead
     * of pending fills).  That discipline is what lets dispatch batch
     * a whole priority class, and it is asserted here.
     */
    template <typename F>
    void
    schedule(Tick when, uint64_t prio, F &&cb)
    {
        lll_assert(when >= now_, "scheduling in the past (%llu < %llu)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
        lll_assert(!dispatching_ || when != now_ || prio >= batchPrio_,
                   "same-tick schedule below the running priority class "
                   "(prio %llu < %llu): bands must progress forward "
                   "within a tick",
                   static_cast<unsigned long long>(prio),
                   static_cast<unsigned long long>(batchPrio_));
        const uint64_t tie = tieKey(seq_++);
        if (when < epochBase_ + kWheelTicks) {
            // In-window: constant-time drop into the tick's bucket,
            // closure built in place.  now_ >= epochBase_ whenever
            // user code runs, so when is never below the window.
            const size_t slot = when & kWheelMask;
            buckets_[slot].emplace_back(prio, tie, std::forward<F>(cb));
            markOccupied(slot);
            ++wheelCount_;
        } else {
            pushNode(Node{packKey(when, prio), tie,
                          allocSlot(std::forward<F>(cb))});
        }
    }

    /** Schedule @p cb at @p when in the Default band. */
    template <typename F>
    void
    schedule(Tick when, F &&cb)
    {
        schedule(when, schedPrio(SchedBand::Default), std::forward<F>(cb));
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&cb)
    {
        schedule(now_ + delay, std::forward<F>(cb));
    }

    /** Schedule @p cb @p delay ticks from now with priority @p prio. */
    template <typename F>
    void
    scheduleIn(Tick delay, uint64_t prio, F &&cb)
    {
        schedule(now_ + delay, prio, std::forward<F>(cb));
    }

    /**
     * Run events until the queue is empty or simulated time would pass
     * @p limit.  Events scheduled exactly at @p limit are processed.
     *
     * now_ fast-forwards: the occupancy bitmap's count-trailing-zeros
     * scan jumps straight to the next busy tick, and an empty window
     * jumps straight to the heap's earliest event, so a sparse
     * schedule costs per *event*, never per idle tick.  Within one
     * tick, the bucket is sorted by (priority, tie) and dispatched as
     * a batch; new same-tick work landing during the batch is merged
     * in priority order before any later class runs.
     *
     * A stop latched by requestStop() — during a callback *or* between
     * runs — makes this return true immediately, once.
     *
     * @return true if stopped because the limit was reached or a stop
     *         was requested (events may remain), false if the queue
     *         drained.
     */
    bool
    runUntil(Tick limit)
    {
        if (stopRequested_) {
            // Latched while no run was in flight (e.g. a watchdog
            // between measurement windows): honour it now.
            stopRequested_ = false;
            return true;
        }
        lll_assert(!dispatching_, "runUntil is not reentrant");
        dispatching_ = true;
        for (;;) {
            if (wheelCount_ == 0) {
                if (heap_.empty()) {
                    now_ = std::max(now_, limit);
                    dispatching_ = false;
                    return false;
                }
                const Tick top = keyWhen(heap_.front().wp);
                if (top > limit) {
                    now_ = limit;
                    dispatching_ = false;
                    return true;
                }
                // Idle fast-forward: jump the window to the earliest
                // heap event and pull everything now in range.
                epochBase_ = top & ~kWheelMask;
                refillWheel();
            }
            const Tick from = now_ > epochBase_ ? now_ : epochBase_;
            const size_t slot = nextOccupied(from & kWheelMask);
            const Tick tick = epochBase_ | static_cast<Tick>(slot);
            if (tick > limit) {
                now_ = limit;
                dispatching_ = false;
                return true;
            }
            LLL_INVARIANT(tick >= now_,
                          "event-queue time ran backwards (%llu < %llu)",
                          static_cast<unsigned long long>(tick),
                          static_cast<unsigned long long>(now_));
            now_ = tick;
            if (dispatchBucket(slot)) {
                stopRequested_ = false;
                dispatching_ = false;
                return true;
            }
        }
    }

    /**
     * Ask runUntil() to return early (the watchdog uses this to abort a
     * wedged run without unwinding through event callbacks).  The stop
     * latches: issued with no run in flight, the *next* runUntil()
     * returns immediately instead of the request being dropped.
     */
    void requestStop() { stopRequested_ = true; }

    /** Number of events processed so far. */
    uint64_t processed() const { return processed_; }

    /** Number of events still pending. */
    size_t pending() const { return wheelCount_ + heap_.size(); }

  private:
#if defined(__SIZEOF_INT128__)
    /** (when << 64) | prio: one wide compare orders time, then band. */
    using WhenPrio = unsigned __int128;

    static constexpr WhenPrio
    packKey(Tick when, uint64_t prio)
    {
        return (static_cast<WhenPrio>(when) << 64) | prio;
    }

    static constexpr Tick
    keyWhen(WhenPrio wp)
    {
        return static_cast<Tick>(wp >> 64);
    }

    static constexpr uint64_t
    keyPrio(WhenPrio wp)
    {
        return static_cast<uint64_t>(wp);
    }
#else
    struct WhenPrio
    {
        uint64_t when;
        uint64_t prio;

        bool
        operator==(const WhenPrio &o) const
        {
            return when == o.when && prio == o.prio;
        }

        bool
        operator!=(const WhenPrio &o) const { return !(*this == o); }

        bool
        operator<(const WhenPrio &o) const
        {
            return when != o.when ? when < o.when : prio < o.prio;
        }
    };

    static constexpr WhenPrio
    packKey(Tick when, uint64_t prio)
    {
        return WhenPrio{when, prio};
    }

    static constexpr Tick keyWhen(WhenPrio wp) { return wp.when; }

    static constexpr uint64_t keyPrio(WhenPrio wp) { return wp.prio; }
#endif

    static constexpr Tick kWheelMask = kWheelTicks - 1;
    static_assert((kWheelTicks & kWheelMask) == 0,
                  "window size must be a power of two: bucket index is "
                  "when & kWheelMask and the window is tick-aligned");

    /**
     * One in-window event: ordering key (tick is the bucket) plus the
     * closure itself — buckets never sift, so the closure can live
     * where it will be invoked.
     */
    struct Pending
    {
        uint64_t prio;
        uint64_t tie; //!< tie-break: seq, or its seeded permutation
        EventFn fn;

        template <typename F>
        Pending(uint64_t p, uint64_t t, F &&f)
            : prio(p), tie(t), fn(std::forward<F>(f))
        {
        }

        Pending(Pending &&) noexcept = default;
        Pending &operator=(Pending &&) noexcept = default;
    };

    static bool
    pendingBefore(const Pending &a, const Pending &b)
    {
        return a.prio != b.prio ? a.prio < b.prio : a.tie < b.tie;
    }

    /**
     * Flat-heap node: the full ordering key plus the index of the
     * callback's slot in slots_.  Trivially copyable and 32 bytes, so
     * a sift is a handful of register moves — the type-erased closure
     * never travels through the heap.
     */
    struct Node
    {
        WhenPrio wp;
        uint64_t tie; //!< tie-break: seq, or its seeded permutation
        uint32_t slot;
    };

    static bool
    nodeBefore(const Node &a, const Node &b)
    {
        if (a.wp != b.wp)
            return a.wp < b.wp;
        return a.tie < b.tie;
    }

    uint64_t
    tieKey(uint64_t seq) const
    {
        return tieSeed_ == 0 ? seq : schedMix64(seq ^ tieSeed_);
    }

    // 4-ary min-heap over heap_: children of i live at 4i+1..4i+4.
    // Half the depth of a binary heap and the four-way sibling compare
    // runs over one cache line of adjacent nodes.
    void
    pushNode(Node v)
    {
        size_t i = heap_.size();
        heap_.push_back(v);
        while (i > 0) {
            const size_t parent = (i - 1) / 4;
            if (!nodeBefore(v, heap_[parent]))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = v;
    }

    void
    popTop()
    {
        const Node last = heap_.back();
        heap_.pop_back();
        if (heap_.empty())
            return;
        // Sift the former last element down from the root.
        const size_t n = heap_.size();
        size_t i = 0;
        for (;;) {
            size_t child = 4 * i + 1;
            if (child >= n)
                break;
            const size_t end = std::min(child + 4, n);
            size_t best = child;
            for (size_t k = child + 1; k < end; ++k) {
                if (nodeBefore(heap_[k], heap_[best]))
                    best = k;
            }
            if (!nodeBefore(heap_[best], last))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = last;
    }

    template <typename F>
    uint32_t
    allocSlot(F &&cb)
    {
        if (freeSlots_.empty()) {
            slots_.emplace_back(std::forward<F>(cb));
            return static_cast<uint32_t>(slots_.size() - 1);
        }
        const uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot] = EventFn(std::forward<F>(cb));
        return slot;
    }

    void
    markOccupied(size_t slot)
    {
        bitmap_[slot >> 6] |= uint64_t{1} << (slot & 63);
    }

    void
    markEmpty(size_t slot)
    {
        bitmap_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    }

    /** First occupied bucket at or after @p from (the window holds at
     *  least one event at a tick >= now_ when this is called). */
    size_t
    nextOccupied(size_t from) const
    {
        size_t word = from >> 6;
        uint64_t bits = bitmap_[word] & (~uint64_t{0} << (from & 63));
        while (bits == 0) {
            ++word;
            LLL_INVARIANT(word < kWords,
                          "occupancy bitmap disagrees with wheelCount_");
            bits = bitmap_[word];
        }
        return (word << 6) +
               static_cast<size_t>(__builtin_ctzll(bits));
    }

    /** Drain every heap event inside the (just-moved) window into its
     *  bucket; tie keys ride along, so total order is unaffected. */
    void
    refillWheel()
    {
        const Tick end = epochBase_ + kWheelTicks;
        while (!heap_.empty() && keyWhen(heap_.front().wp) < end) {
            const Node n = heap_.front();
            popTop();
            const size_t slot = keyWhen(n.wp) & kWheelMask;
            buckets_[slot].emplace_back(keyPrio(n.wp), n.tie,
                                        std::move(slots_[n.slot]));
            freeSlots_.push_back(n.slot);
            markOccupied(slot);
            ++wheelCount_;
        }
    }

    /** Return batch_[from..] to the tick's bucket (uninvoked work). */
    void
    spillBack(std::vector<Pending> &bucket, size_t slot, size_t from)
    {
        for (size_t j = from; j < batch_.size(); ++j)
            bucket.push_back(std::move(batch_[j]));
        wheelCount_ += batch_.size() - from;
        if (!bucket.empty())
            markOccupied(slot);
    }

    /**
     * Dispatch every event at the current tick, sorted by (prio, tie).
     * Returns true if a callback requested a stop; the uninvoked
     * remainder is back in the bucket.
     */
    bool
    dispatchBucket(size_t slot)
    {
        std::vector<Pending> &bucket = buckets_[slot];
        // Lone-event fast path (the common case): no sort, no batch
        // staging.  Moved out first because the callback may schedule
        // into this very bucket and reallocate it.
        while (bucket.size() == 1) {
            Pending p = std::move(bucket.back());
            bucket.pop_back();
            markEmpty(slot);
            --wheelCount_;
            batchPrio_ = p.prio;
            ++processed_;
            p.fn();
            if (stopRequested_)
                return true;
            if (bucket.empty())
                return false;
        }
        for (;;) {
            batch_.swap(bucket);
            markEmpty(slot);
            wheelCount_ -= batch_.size();
            if (batch_.size() > 1)
                std::sort(batch_.begin(), batch_.end(), pendingBefore);
            bool remerge = false;
            for (size_t i = 0; i < batch_.size(); ++i) {
                if (i != 0 && !bucket.empty() &&
                    batch_[i].prio != batch_[i - 1].prio) {
                    // A callback scheduled same-tick work; it may sort
                    // before this next class, so fold the remainder
                    // back in and re-sort everything together.
                    spillBack(bucket, slot, i);
                    remerge = true;
                    break;
                }
                batchPrio_ = batch_[i].prio;
                ++processed_;
                batch_[i].fn();
                if (stopRequested_) {
                    spillBack(bucket, slot, i + 1);
                    batch_.clear();
                    return true;
                }
            }
            batch_.clear();
            // Same-tick arrivals at or above the last class run now,
            // still inside this tick.
            if (!remerge && bucket.empty())
                return false;
        }
    }

    static constexpr size_t kWords = kWheelTicks / 64;

    std::vector<std::vector<Pending>> buckets_; //!< kWheelTicks entries
    uint64_t bitmap_[kWords] = {};   //!< bucket-occupancy bits
    size_t wheelCount_ = 0;          //!< events resident in the window
    Tick epochBase_ = 0;             //!< window covers [base, base+size)
    std::vector<Node> heap_;         //!< beyond-window overflow
    std::vector<EventFn> slots_;     //!< callback arena, indexed by Node
    std::vector<uint32_t> freeSlots_;
    std::vector<Pending> batch_;     //!< tick currently dispatching
    Tick now_ = 0;
    uint64_t seq_ = 0;
    uint64_t tieSeed_ = 0;
    uint64_t processed_ = 0;
    uint64_t batchPrio_ = 0;         //!< class running (assert support)
    bool stopRequested_ = false;
    bool dispatching_ = false;
};

} // namespace lll::sim

#endif // LLL_SIM_EVENT_QUEUE_HH
