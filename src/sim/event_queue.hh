/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global event queue orders callbacks by (tick, insertion
 * sequence); insertion order breaks ties so simulations are fully
 * deterministic.  One tick is one picosecond (see util/stats.hh), which
 * comfortably expresses core clocks from 1.4 to 2.1 GHz without rounding
 * drift over the millisecond-scale windows this project simulates.
 */

#ifndef LLL_SIM_EVENT_QUEUE_HH
#define LLL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/logging.hh"
#include "util/stats.hh"

namespace lll::sim
{

/**
 * The event queue: schedule() callbacks in the future, then run().
 *
 * Not thread safe; a System owns exactly one queue and all components
 * attached to that System share it.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        lll_assert(when >= now_, "scheduling in the past (%llu < %llu)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
        heap_.push(Item{when, seq_++, std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Run events until the queue is empty or simulated time would pass
     * @p limit.  Events scheduled exactly at @p limit are processed.
     *
     * @return true if stopped because the limit was reached (more events
     *         remain), false if the queue drained.
     */
    bool
    runUntil(Tick limit)
    {
        stopRequested_ = false;
        while (!heap_.empty()) {
            if (stopRequested_) {
                stopRequested_ = false;
                return true;
            }
            const Item &top = heap_.top();
            if (top.when > limit) {
                now_ = limit;
                return true;
            }
            LLL_INVARIANT(top.when >= now_,
                          "event-queue time ran backwards (%llu < %llu)",
                          static_cast<unsigned long long>(top.when),
                          static_cast<unsigned long long>(now_));
            now_ = top.when;
            // Move the callback out before popping so the heap can be
            // safely mutated by the callback itself.
            Callback cb = std::move(const_cast<Item &>(top).cb);
            heap_.pop();
            ++processed_;
            cb();
        }
        now_ = std::max(now_, limit);
        return false;
    }

    /**
     * Ask the current runUntil() to return after the in-flight callback
     * (the watchdog uses this to abort a wedged run without unwinding
     * through event callbacks).
     */
    void requestStop() { stopRequested_ = true; }

    /** Number of events processed so far. */
    uint64_t processed() const { return processed_; }

    /** Number of events still pending. */
    size_t pending() const { return heap_.size(); }

  private:
    struct Item
    {
        Tick when;
        uint64_t seq;
        Callback cb;

        bool
        operator>(const Item &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
    Tick now_ = 0;
    uint64_t seq_ = 0;
    uint64_t processed_ = 0;
    bool stopRequested_ = false;
};

} // namespace lll::sim

#endif // LLL_SIM_EVENT_QUEUE_HH
