/**
 * @file
 * Configuration validation for the simulator.
 *
 * Every knob a user (or a fuzzer) can reach — SystemParams, cache
 * geometry, memory-controller bank math, KernelSpec stream mixes — is
 * checked here and rejected with a structured FailedPrecondition error
 * *before* a System is built.  The System constructor itself keeps only
 * lll_assert()s: once callers validate, an invalid configuration
 * reaching construction is a library bug.
 */

#ifndef LLL_SIM_VALIDATOR_HH
#define LLL_SIM_VALIDATOR_HH

#include "sim/kernel_spec.hh"
#include "sim/system.hh"
#include "util/status.hh"

namespace lll::sim
{

/**
 * Check one cache level.  @p mshrs_required is false for the shared
 * LLC, where 0 MSHRs legitimately means "unbounded" (the paper does not
 * model the LLC as a limiter).
 */
util::Status validateCacheParams(const Cache::Params &params,
                                 const char *what, bool mshrs_required);

/**
 * Check a full node description: core/SMT counts against the capacity
 * curve, cache geometry (power-of-two sets, nonzero ways/MSHRs), the
 * prefetcher table, and memory-controller consistency — including that
 * an explicit bank override can actually sustain the declared peak
 * bandwidth (banks * lineBytes / bankServiceNs >= peakGBs).
 */
util::Status validateSystemParams(const SystemParams &params);

/** Check a routine model: nonempty stream mix with positive weights and
 *  footprints, sane window / compute / prefetch knobs. */
util::Status validateKernelSpec(const KernelSpec &spec);

} // namespace lll::sim

#endif // LLL_SIM_VALIDATOR_HH
