/**
 * @file
 * Configuration validation for the simulator.
 *
 * Every knob a user (or a fuzzer) can reach — SystemParams, cache
 * geometry, memory-controller bank math, KernelSpec stream mixes — is
 * checked here and rejected *before* a System is built.  The System
 * constructor itself keeps only lll_assert()s: once callers validate,
 * an invalid configuration reaching construction is a library bug.
 *
 * Each check emits a structured util::Diagnostic with a stable ID
 * (`LLL-SPEC-0xx` for SystemParams, `LLL-KRN-0xx` for KernelSpec; see
 * DESIGN.md §10), so `lll lint` and System construction report the
 * same finding identically.  The lint*() functions collect *every*
 * violated check; the validate*() wrappers keep the original Status
 * surface (first error, FailedPrecondition) for existing callers.
 */

#ifndef LLL_SIM_VALIDATOR_HH
#define LLL_SIM_VALIDATOR_HH

#include "sim/kernel_spec.hh"
#include "sim/system.hh"
#include "util/diagnostic.hh"
#include "util/status.hh"

namespace lll::sim
{

/**
 * Check one cache level.  @p mshrs_required is false for the shared
 * LLC, where 0 MSHRs legitimately means "unbounded" (the paper does not
 * model the LLC as a limiter).
 */
util::DiagnosticList lintCacheParams(const Cache::Params &params,
                                     const char *what,
                                     bool mshrs_required);

/**
 * Check a full node description: core/SMT counts against the capacity
 * curve, cache geometry (power-of-two sets, nonzero ways/MSHRs), the
 * prefetcher table, and memory-controller consistency — including that
 * an explicit bank override can actually sustain the declared peak
 * bandwidth (banks * lineBytes / bankServiceNs >= peakGBs).
 */
util::DiagnosticList lintSystemParams(const SystemParams &params);

/** Check a routine model: nonempty stream mix with positive weights and
 *  footprints, sane window / compute / prefetch knobs. */
util::DiagnosticList lintKernelSpec(const KernelSpec &spec);

/** Status views of the lints above: OK, or FailedPrecondition carrying
 *  the first error's "LLL-…-0xx: message" text. */
[[nodiscard]] util::Status validateCacheParams(const Cache::Params &params,
                                 const char *what, bool mshrs_required);
[[nodiscard]] util::Status validateSystemParams(const SystemParams &params);
[[nodiscard]] util::Status validateKernelSpec(const KernelSpec &spec);

} // namespace lll::sim

#endif // LLL_SIM_VALIDATOR_HH
