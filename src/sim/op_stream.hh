/**
 * @file
 * Stateless generation of a kernel's memory-operation sequence.
 *
 * The generator maps an op index n directly to (stream, line address,
 * type) with no mutable state.  Statelessness is what makes software
 * prefetching trivially exact to model: the op at n + distance can be
 * computed at op n without running ahead.
 */

#ifndef LLL_SIM_OP_STREAM_HH
#define LLL_SIM_OP_STREAM_HH

#include <cstdint>
#include <vector>

#include "sim/kernel_spec.hh"
#include "sim/request.hh"

namespace lll::sim
{

/** One memory operation of the kernel. */
struct Op
{
    uint64_t lineAddr = 0;
    ReqType type = ReqType::DemandLoad;
    int streamIdx = 0;
    bool swPrefetchable = false;
};

/**
 * Deterministic op sequence for one hardware thread.
 *
 * Streams are interleaved with a weighted round-robin pattern (so a 0.75 /
 * 0.25 weight split yields a regular 3:1 interleave, like a compiler-
 * scheduled loop body), and each stream's k-th access is a pure function
 * of k, so the whole sequence is random access.
 */
class OpStream
{
  public:
    /**
     * @param spec the kernel description
     * @param thread_seed distinct per (core, thread) for private regions
     * @param core_seed shared by threads of a core (sharedAcrossThreads)
     */
    OpStream(const KernelSpec &spec, uint64_t thread_seed,
             uint64_t core_seed);

    /** The op at sequence position @p n. */
    Op at(uint64_t n) const;

    /** Interleave pattern length (test aid). */
    unsigned patternLength() const
    {
        return static_cast<unsigned>(pattern_.size());
    }

    /** Ops of stream @p s within one pattern period (test aid). */
    unsigned countInPattern(int s) const { return perPattern_[s]; }

  private:
    /** Line address for occurrence @p k of stream @p s (no reuse). */
    uint64_t baseAddress(int s, uint64_t k) const;

    struct StreamState
    {
        StreamDesc desc;
        uint64_t base = 0;      //!< region start, in lines
        uint64_t seed = 0;
    };

    std::vector<StreamState> streams_;
    std::vector<int> pattern_;          //!< slot -> stream index
    std::vector<unsigned> perPattern_;  //!< stream -> ops per period
    std::vector<std::vector<unsigned>> rankAt_; //!< [stream][slot] rank
};

} // namespace lll::sim

#endif // LLL_SIM_OP_STREAM_HH
