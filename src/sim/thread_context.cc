#include "sim/thread_context.hh"

#include <algorithm>

#include "sim/cache.hh"
#include "util/logging.hh"

namespace lll::sim
{

ThreadContext::ThreadContext(const Params &params, const KernelSpec &spec,
                             EventQueue &eq, RequestPool &pool,
                             CoreModel &core, Cache &l1, Cache &l2)
    : ThreadContext(params, std::vector<PhaseSpec>{PhaseSpec{spec, 0}},
                    eq, pool, core, l1, l2)
{
}

ThreadContext::ThreadContext(const Params &params,
                             std::vector<PhaseSpec> phases,
                             EventQueue &eq, RequestPool &pool,
                             CoreModel &core, Cache &l1, Cache &l2)
    : params_(params), eq_(eq), pool_(pool), core_(core), l1_(l1),
      l2_(l2)
{
    lll_assert(!phases.empty(), "thread needs at least one phase");
    states_.reserve(phases.size());
    for (PhaseSpec &p : phases) {
        lll_assert(p.spec.window >= 1, "kernel window must be >= 1");
        OpStream ops(p.spec, params_.threadSeed, params_.coreSeed);
        PhaseState st{std::move(p), std::move(ops), 0, 0};
        st.effWindow = std::min(st.phase.spec.window, params_.lqSize);
        states_.push_back(std::move(st));
    }
}

void
ThreadContext::start()
{
    beginCompute();
}

void
ThreadContext::maybeAdvancePhase()
{
    const PhaseState &st = states_[phase_];
    if (states_.size() < 2 || st.phase.opsPerVisit == 0)
        return;
    if (opsThisVisit_ >= st.phase.opsPerVisit) {
        opsThisVisit_ = 0;
        phase_ = (phase_ + 1) % states_.size();
        // Any ops still in flight from the previous phase keep draining;
        // the window check below uses the new phase's limit, like a real
        // routine boundary.
        pendingOp_.reset();
    }
}

void
ThreadContext::beginCompute()
{
    const KernelSpec &k = spec();
    double cycles = k.computeCyclesPerOp;
    if (k.swPrefetchL2) {
        Op fut = states_[phase_].ops.at(states_[phase_].opIndex +
                                        k.swPrefetchDistance);
        if (fut.swPrefetchable)
            cycles += k.swPrefetchOverheadCycles;
    }
    core_.compute(params_.thread, cycles, [this] { computeDone(); });
}

void
ThreadContext::computeDone()
{
    computeReady_ = true;
    tryIssue();
}

void
ThreadContext::tryIssue()
{
    if (!computeReady_)
        return;

    // An L1 retry is already registered: let it do the issuing.  Issuing
    // from another trigger (a same-tick load completion, say) would make
    // the stall accounting depend on which event popped first.
    if (waitingRetry_)
        return;

    PhaseState &st = states_[phase_];
    const KernelSpec &k = st.phase.spec;

    if (!pendingOp_)
        pendingOp_ = st.ops.at(st.opIndex);

    if (pendingOp_->type == ReqType::DemandLoad &&
        inFlight_ >= st.effWindow) {
        return;   // window full; a completion will re-trigger us
    }

    MemRequest *req = pool_.alloc();
    req->lineAddr = pendingOp_->lineAddr;
    req->type = pendingOp_->type;
    req->core = params_.core;
    req->thread = static_cast<int>(params_.thread);
    req->issued = eq_.now();
    req->requester = this;

    if (!l1_.tryAccess(req)) {
        pool_.free(req);
        if (!waitingRetry_) {
            waitingRetry_ = true;
            l1_.addRetryWaiter([this] {
                waitingRetry_ = false;
                retry();
            });
        }
        return;
    }

    if (pendingOp_->type == ReqType::DemandLoad)
        ++inFlight_;
    ++opsIssued_;
    ++opsThisVisit_;
    workDone_ += k.workPerOp;

    // Software prefetch into the L2, `distance` ops ahead of the demand
    // stream.  Fire-and-forget: the L2 drops it when MSHRs are scarce.
    if (k.swPrefetchL2) {
        Op fut = st.ops.at(st.opIndex + k.swPrefetchDistance);
        if (fut.swPrefetchable) {
            PrefetchOutcome out =
                l2_.tryPrefetch(fut.lineAddr, ReqType::SwPrefetch,
                                params_.core,
                                static_cast<int>(params_.thread));
            if (out == PrefetchOutcome::Started ||
                out == PrefetchOutcome::Deferred) {
                ++swPrefIssued_;
            }
        }
    }

    ++st.opIndex;
    pendingOp_.reset();
    computeReady_ = false;
    maybeAdvancePhase();
    beginCompute();
}

void
ThreadContext::opComplete(MemRequest *req)
{
    const bool was_load = req->type == ReqType::DemandLoad;
    pool_.free(req);
    if (was_load) {
        lll_assert(inFlight_ > 0, "load completion underflow");
        --inFlight_;
    }
    tryIssue();
}

void
ThreadContext::retry()
{
    tryIssue();
}

void
ThreadContext::resetStats()
{
    opsIssued_ = 0;
    workDone_ = 0.0;
    swPrefIssued_ = 0;
}

} // namespace lll::sim
