#include "sim/validator.hh"

#include <cmath>

namespace lll::sim
{

using util::DiagnosticList;
using util::ErrorCode;
using util::Status;

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

DiagnosticList
lintCacheParams(const Cache::Params &params, const char *what,
                bool mshrs_required)
{
    DiagnosticList out;
    if (!isPow2(params.sets)) {
        out.error("LLL-SPEC-007", what,
                  "%s: sets (%u) must be a nonzero power of two", what,
                  params.sets);
    }
    if (params.ways == 0)
        out.error("LLL-SPEC-008", what, "%s: ways must be >= 1", what);
    if (mshrs_required && params.mshrs == 0) {
        out.error("LLL-SPEC-009", what, "%s: MSHR count must be >= 1",
                  what);
    }
    if (params.mshrs != 0 && params.prefetchReserve >= params.mshrs) {
        out.error("LLL-SPEC-010", what,
                  "%s: prefetchReserve (%u) must leave demand room in "
                  "%u MSHRs",
                  what, params.prefetchReserve, params.mshrs);
    }
    return out;
}

DiagnosticList
lintSystemParams(const SystemParams &params)
{
    DiagnosticList out;
    const std::string &sub = params.name;
    if (params.cores < 1) {
        out.error("LLL-SPEC-001", sub, "cores must be >= 1 (got %d)",
                  params.cores);
    }
    if (params.threadsPerCore < 1 ||
        params.threadsPerCore >= params.smtCapacity.size()) {
        out.error("LLL-SPEC-002", sub,
                  "threadsPerCore (%u) outside supported 1..%zu",
                  params.threadsPerCore, params.smtCapacity.size() - 1);
    } else if (params.smtCapacity[params.threadsPerCore] <= 0.0) {
        out.error("LLL-SPEC-003", sub,
                  "smtCapacity[%u] is zero: platform does not support "
                  "%u-way SMT",
                  params.threadsPerCore, params.threadsPerCore);
    }
    if (!(params.freqGHz > 0.0) || !std::isfinite(params.freqGHz)) {
        out.error("LLL-SPEC-004", sub,
                  "freqGHz must be positive and finite (got %g)",
                  params.freqGHz);
    }
    if (!isPow2(params.lineBytes) || params.lineBytes < 8) {
        out.error("LLL-SPEC-005", sub,
                  "lineBytes (%u) must be a power of two >= 8",
                  params.lineBytes);
    }
    if (params.lqSize == 0)
        out.error("LLL-SPEC-006", sub, "load-queue size must be >= 1");

    out.append(lintCacheParams(params.l1, "l1", true));
    out.append(lintCacheParams(params.l2, "l2", true));
    if (params.hasL3)
        out.append(lintCacheParams(params.l3, "l3", false));

    if (params.l2PrefetcherEnabled) {
        if (params.pf.tableSize == 0) {
            out.error("LLL-SPEC-011", sub,
                      "prefetcher tableSize must be >= 1 when enabled");
        }
        if (params.pf.degree == 0) {
            out.error("LLL-SPEC-012", sub,
                      "prefetcher degree must be >= 1 when enabled");
        }
        if (params.pf.distance == 0) {
            out.error("LLL-SPEC-013", sub,
                      "prefetcher distance must be >= 1 when enabled");
        }
    }

    const MemCtrl::Params &mem = params.mem;
    if (!(mem.peakGBs > 0.0) || !std::isfinite(mem.peakGBs)) {
        out.error("LLL-SPEC-014", sub,
                  "mem.peakGBs must be positive and finite (got %g)",
                  mem.peakGBs);
    }
    if (!(mem.bankServiceNs > 0.0) || !std::isfinite(mem.bankServiceNs)) {
        out.error("LLL-SPEC-015", sub,
                  "mem.bankServiceNs must be positive and finite "
                  "(got %g)",
                  mem.bankServiceNs);
    }
    if (mem.frontLatencyNs < 0.0 || mem.backLatencyNs < 0.0 ||
        !std::isfinite(mem.frontLatencyNs) ||
        !std::isfinite(mem.backLatencyNs)) {
        out.error("LLL-SPEC-016", sub,
                  "mem front/back latencies must be finite and >= 0 "
                  "(got %g / %g)",
                  mem.frontLatencyNs, mem.backLatencyNs);
    }
    if (mem.banksOverride != 0 && mem.bankServiceNs > 0.0 &&
        std::isfinite(mem.bankServiceNs)) {
        // Peak bandwidth vs bank math: the declared peak must be
        // reachable with the overridden bank count, or the controller
        // silently caps below its own datasheet number.
        double achievable = mem.banksOverride *
                            static_cast<double>(params.lineBytes) /
                            mem.bankServiceNs;
        if (achievable < mem.peakGBs) {
            out.error("LLL-SPEC-017", sub,
                      "mem: %u banks x %u B / %g ns sustains only "
                      "%.1f GB/s, below the declared peak %.1f GB/s",
                      mem.banksOverride, params.lineBytes,
                      mem.bankServiceNs, achievable, mem.peakGBs);
        }
    }

    if (!(params.watchdog.cadenceUs > 0.0)) {
        out.error("LLL-SPEC-018", sub,
                  "watchdog cadence must be positive (got %g)",
                  params.watchdog.cadenceUs);
    }
    if (params.watchdog.maxStrikes == 0)
        out.error("LLL-SPEC-019", sub, "watchdog maxStrikes must be >= 1");
    return out;
}

DiagnosticList
lintKernelSpec(const KernelSpec &spec)
{
    DiagnosticList out;
    const std::string &sub = spec.name;
    if (spec.streams.empty()) {
        out.error("LLL-KRN-001", sub,
                  "kernel '%s': needs at least one stream",
                  spec.name.c_str());
    }
    double total_weight = 0.0;
    for (size_t i = 0; i < spec.streams.size(); ++i) {
        const StreamDesc &s = spec.streams[i];
        if (s.footprintLines == 0) {
            out.error("LLL-KRN-002", sub,
                      "kernel '%s' stream %zu: footprint must be >= 1 "
                      "line",
                      spec.name.c_str(), i);
        }
        if (!(s.weight > 0.0) || !std::isfinite(s.weight)) {
            out.error("LLL-KRN-003", sub,
                      "kernel '%s' stream %zu: weight must be positive "
                      "and finite (got %g)",
                      spec.name.c_str(), i, s.weight);
        } else {
            total_weight += s.weight;
        }
        if (s.kind == StreamDesc::Kind::Strided && s.strideLines == 0) {
            out.error("LLL-KRN-004", sub,
                      "kernel '%s' stream %zu: strided stream needs a "
                      "nonzero stride",
                      spec.name.c_str(), i);
        }
        if (s.reuseFraction < 0.0 || s.reuseFraction > 1.0 ||
            !std::isfinite(s.reuseFraction)) {
            out.error("LLL-KRN-005", sub,
                      "kernel '%s' stream %zu: reuseFraction %g outside "
                      "[0, 1]",
                      spec.name.c_str(), i, s.reuseFraction);
        }
    }
    if (!spec.streams.empty() && !(total_weight > 0.0)) {
        out.error("LLL-KRN-006", sub,
                  "kernel '%s': stream weights sum to zero",
                  spec.name.c_str());
    }
    if (spec.window == 0) {
        out.error("LLL-KRN-007", sub, "kernel '%s': window must be >= 1",
                  spec.name.c_str());
    }
    if (spec.computeCyclesPerOp < 0.0 ||
        !std::isfinite(spec.computeCyclesPerOp)) {
        out.error("LLL-KRN-008", sub,
                  "kernel '%s': computeCyclesPerOp must be finite and "
                  ">= 0 (got %g)",
                  spec.name.c_str(), spec.computeCyclesPerOp);
    }
    if (!(spec.workPerOp > 0.0) || !std::isfinite(spec.workPerOp)) {
        out.error("LLL-KRN-009", sub,
                  "kernel '%s': workPerOp must be positive and finite "
                  "(got %g)",
                  spec.name.c_str(), spec.workPerOp);
    }
    if (spec.swPrefetchL2 && spec.swPrefetchDistance == 0) {
        out.error("LLL-KRN-010", sub,
                  "kernel '%s': software prefetch needs a distance >= 1",
                  spec.name.c_str());
    }
    return out;
}

Status
validateCacheParams(const Cache::Params &params, const char *what,
                    bool mshrs_required)
{
    return lintCacheParams(params, what, mshrs_required).toStatus();
}

Status
validateSystemParams(const SystemParams &params)
{
    return lintSystemParams(params).toStatus();
}

Status
validateKernelSpec(const KernelSpec &spec)
{
    return lintKernelSpec(spec).toStatus();
}

} // namespace lll::sim
