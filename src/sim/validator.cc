#include "sim/validator.hh"

#include <cmath>

namespace lll::sim
{

using util::ErrorCode;
using util::Status;

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

Status
bad(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

Status
bad(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    return Status(ErrorCode::FailedPrecondition, std::move(msg));
}

} // namespace

Status
validateCacheParams(const Cache::Params &params, const char *what,
                    bool mshrs_required)
{
    if (!isPow2(params.sets))
        return bad("%s: sets (%u) must be a nonzero power of two", what,
                   params.sets);
    if (params.ways == 0)
        return bad("%s: ways must be >= 1", what);
    if (mshrs_required && params.mshrs == 0)
        return bad("%s: MSHR count must be >= 1", what);
    if (params.mshrs != 0 && params.prefetchReserve >= params.mshrs)
        return bad("%s: prefetchReserve (%u) must leave demand room in "
                   "%u MSHRs",
                   what, params.prefetchReserve, params.mshrs);
    return Status::okStatus();
}

Status
validateSystemParams(const SystemParams &params)
{
    if (params.cores < 1)
        return bad("cores must be >= 1 (got %d)", params.cores);
    if (params.threadsPerCore < 1 ||
        params.threadsPerCore >= params.smtCapacity.size()) {
        return bad("threadsPerCore (%u) outside supported 1..%zu",
                   params.threadsPerCore, params.smtCapacity.size() - 1);
    }
    if (params.smtCapacity[params.threadsPerCore] <= 0.0)
        return bad("smtCapacity[%u] is zero: platform does not support "
                   "%u-way SMT",
                   params.threadsPerCore, params.threadsPerCore);
    if (!(params.freqGHz > 0.0) || !std::isfinite(params.freqGHz))
        return bad("freqGHz must be positive and finite (got %g)",
                   params.freqGHz);
    if (!isPow2(params.lineBytes) || params.lineBytes < 8)
        return bad("lineBytes (%u) must be a power of two >= 8",
                   params.lineBytes);
    if (params.lqSize == 0)
        return bad("load-queue size must be >= 1");

    LLL_RETURN_IF_ERROR(validateCacheParams(params.l1, "l1", true));
    LLL_RETURN_IF_ERROR(validateCacheParams(params.l2, "l2", true));
    if (params.hasL3)
        LLL_RETURN_IF_ERROR(validateCacheParams(params.l3, "l3", false));

    if (params.l2PrefetcherEnabled) {
        if (params.pf.tableSize == 0)
            return bad("prefetcher tableSize must be >= 1 when enabled");
        if (params.pf.degree == 0)
            return bad("prefetcher degree must be >= 1 when enabled");
        if (params.pf.distance == 0)
            return bad("prefetcher distance must be >= 1 when enabled");
    }

    const MemCtrl::Params &mem = params.mem;
    if (!(mem.peakGBs > 0.0) || !std::isfinite(mem.peakGBs))
        return bad("mem.peakGBs must be positive and finite (got %g)",
                   mem.peakGBs);
    if (!(mem.bankServiceNs > 0.0) || !std::isfinite(mem.bankServiceNs))
        return bad("mem.bankServiceNs must be positive and finite "
                   "(got %g)",
                   mem.bankServiceNs);
    if (mem.frontLatencyNs < 0.0 || mem.backLatencyNs < 0.0 ||
        !std::isfinite(mem.frontLatencyNs) ||
        !std::isfinite(mem.backLatencyNs)) {
        return bad("mem front/back latencies must be finite and >= 0 "
                   "(got %g / %g)",
                   mem.frontLatencyNs, mem.backLatencyNs);
    }
    if (mem.banksOverride != 0) {
        // Peak bandwidth vs bank math: the declared peak must be
        // reachable with the overridden bank count, or the controller
        // silently caps below its own datasheet number.
        double achievable = mem.banksOverride *
                            static_cast<double>(params.lineBytes) /
                            mem.bankServiceNs;
        if (achievable < mem.peakGBs) {
            return bad("mem: %u banks x %u B / %g ns sustains only "
                       "%.1f GB/s, below the declared peak %.1f GB/s",
                       mem.banksOverride, params.lineBytes,
                       mem.bankServiceNs, achievable, mem.peakGBs);
        }
    }

    if (!(params.watchdog.cadenceUs > 0.0))
        return bad("watchdog cadence must be positive (got %g)",
                   params.watchdog.cadenceUs);
    if (params.watchdog.maxStrikes == 0)
        return bad("watchdog maxStrikes must be >= 1");
    return Status::okStatus();
}

Status
validateKernelSpec(const KernelSpec &spec)
{
    if (spec.streams.empty())
        return bad("kernel '%s': needs at least one stream",
                   spec.name.c_str());
    double total_weight = 0.0;
    for (size_t i = 0; i < spec.streams.size(); ++i) {
        const StreamDesc &s = spec.streams[i];
        if (s.footprintLines == 0)
            return bad("kernel '%s' stream %zu: footprint must be >= 1 "
                       "line",
                       spec.name.c_str(), i);
        if (!(s.weight > 0.0) || !std::isfinite(s.weight))
            return bad("kernel '%s' stream %zu: weight must be positive "
                       "and finite (got %g)",
                       spec.name.c_str(), i, s.weight);
        if (s.kind == StreamDesc::Kind::Strided && s.strideLines == 0)
            return bad("kernel '%s' stream %zu: strided stream needs a "
                       "nonzero stride",
                       spec.name.c_str(), i);
        if (s.reuseFraction < 0.0 || s.reuseFraction > 1.0 ||
            !std::isfinite(s.reuseFraction)) {
            return bad("kernel '%s' stream %zu: reuseFraction %g outside "
                       "[0, 1]",
                       spec.name.c_str(), i, s.reuseFraction);
        }
        total_weight += s.weight;
    }
    if (!(total_weight > 0.0))
        return bad("kernel '%s': stream weights sum to zero",
                   spec.name.c_str());
    if (spec.window == 0)
        return bad("kernel '%s': window must be >= 1", spec.name.c_str());
    if (spec.computeCyclesPerOp < 0.0 ||
        !std::isfinite(spec.computeCyclesPerOp)) {
        return bad("kernel '%s': computeCyclesPerOp must be finite and "
                   ">= 0 (got %g)",
                   spec.name.c_str(), spec.computeCyclesPerOp);
    }
    if (!(spec.workPerOp > 0.0) || !std::isfinite(spec.workPerOp))
        return bad("kernel '%s': workPerOp must be positive and finite "
                   "(got %g)",
                   spec.name.c_str(), spec.workPerOp);
    if (spec.swPrefetchL2 && spec.swPrefetchDistance == 0)
        return bad("kernel '%s': software prefetch needs a distance >= 1",
                   spec.name.c_str());
    return Status::okStatus();
}

} // namespace lll::sim
