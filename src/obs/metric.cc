#include "obs/metric.hh"

#include <algorithm>
#include <cmath>

namespace lll::obs
{

void
Log2Histogram::sample(double v)
{
    size_t idx = 0;
    if (v >= 1.0) {
        idx = static_cast<size_t>(std::ilogb(v)) + 1;
        idx = std::min(idx, kBuckets - 1);
    }
    ++counts_[idx];
    ++total_;
    sum_ += v;
}

double
Log2Histogram::bucketUpper(size_t k)
{
    return std::ldexp(1.0, static_cast<int>(k));
}

double
Log2Histogram::percentile(double frac) const
{
    if (total_ == 0)
        return 0.0;
    uint64_t target =
        static_cast<uint64_t>(frac * static_cast<double>(total_));
    uint64_t seen = 0;
    for (size_t k = 0; k < kBuckets; ++k) {
        seen += counts_[k];
        if (seen >= target && counts_[k])
            return bucketUpper(k);
    }
    return bucketUpper(kBuckets - 1);
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (size_t k = 0; k < kBuckets; ++k)
        counts_[k] += other.counts_[k];
    total_ += other.total_;
    sum_ += other.sum_;
}

void
Log2Histogram::reset()
{
    counts_.fill(0);
    total_ = 0;
    sum_ = 0.0;
}

void
TimeSeries::push(Tick when, double value)
{
    Sample s{when, value};
    if (ring_.size() < capacity_) {
        ring_.push_back(s);
    } else {
        ring_[head_] = s;
        head_ = (head_ + 1) % capacity_;
    }
    ++total_;
}

std::vector<TimeSeries::Sample>
TimeSeries::samples() const
{
    std::vector<Sample> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
TimeSeries::clear()
{
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

} // namespace lll::obs
