#include "obs/metric.hh"

#include <algorithm>
#include <cmath>

namespace lll::obs
{

void
Log2Histogram::sample(double v)
{
    size_t idx = 0;
    if (v >= 1.0) {
        idx = static_cast<size_t>(std::ilogb(v)) + 1;
        idx = std::min(idx, kBuckets - 1);
    }
    ++counts_[idx];
    if (total_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++total_;
    sum_ += v;
}

double
Log2Histogram::bucketUpper(size_t k)
{
    return std::ldexp(1.0, static_cast<int>(k));
}

double
Log2Histogram::percentile(double frac) const
{
    if (total_ == 0)
        return 0.0;
    if (total_ == 1 || frac <= 0.0)
        return frac >= 1.0 ? max_ : min_;
    if (frac >= 1.0)
        return max_;

    // 1-based rank of the sample the percentile falls on.
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(frac * static_cast<double>(total_))));
    uint64_t before = 0;
    for (size_t k = 0; k < kBuckets; ++k) {
        if (before + counts_[k] >= target && counts_[k]) {
            // Spread the bucket's samples evenly across [lower, upper)
            // and pick the target rank's midpoint position.
            const double lower = k == 0 ? 0.0 : bucketUpper(k - 1);
            const double upper = bucketUpper(k);
            const double pos =
                (static_cast<double>(target - before) - 0.5) /
                static_cast<double>(counts_[k]);
            const double v = lower + pos * (upper - lower);
            // The top bucket absorbs overflow up to 2^63; clamping to
            // the observed range keeps every answer a real value.
            return std::clamp(v, min_, max_);
        }
        before += counts_[k];
    }
    return max_;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    if (other.total_ == 0)
        return;
    if (total_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (size_t k = 0; k < kBuckets; ++k)
        counts_[k] += other.counts_[k];
    total_ += other.total_;
    sum_ += other.sum_;
}

void
Log2Histogram::reset()
{
    counts_.fill(0);
    total_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
TimeSeries::push(Tick when, double value)
{
    Sample s{when, value};
    if (ring_.size() < capacity_) {
        ring_.push_back(s);
    } else {
        ring_[head_] = s;
        head_ = (head_ + 1) % capacity_;
    }
    ++total_;
}

std::vector<TimeSeries::Sample>
TimeSeries::samples() const
{
    std::vector<Sample> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
TimeSeries::clear()
{
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

} // namespace lll::obs
