#include "obs/sampler.hh"

namespace lll::obs
{

void
Sampler::sample(Tick now)
{
    if (!armed_)
        return;
    registry_.sampleAll(now);
    ++taken_;
}

} // namespace lll::obs
