#include "obs/sampler.hh"

#include "obs/timer.hh"

namespace lll::obs
{

void
Sampler::sample(Tick now)
{
    if (!armed_)
        return;
    WallTimer cost;
    registry_.sampleAll(now);
    ++taken_;
    // Price the snapshot itself: per-snapshot cost is this counter
    // divided by the registry's snapshots() count.
    registry_.counter(kSelfOverheadCounter)
        .increment(static_cast<uint64_t>(cost.elapsedNs()));
}

} // namespace lll::obs
