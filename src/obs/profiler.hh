/**
 * @file
 * Self-profiler: folds the span tracker's per-path aggregates into a
 * wall-clock attribution tree — inclusive/exclusive time, call counts
 * and a hot-path ranking — so `lll profile <cmd>` can answer "where did
 * the wall time go?" with the same numbers the telemetry spans carry.
 *
 * The profiler is pure post-processing: it reads SpanTracker::stats()
 * after the fact and costs nothing while the profiled code runs beyond
 * the spans that are already there.  When no report is built the only
 * overhead is the (always-on) span bookkeeping itself.
 *
 * Tree semantics:
 *  - the root is a synthetic "total" node carrying the measured wall
 *    time of the whole command;
 *  - each span path `a/b/c` becomes a node under its parent `a/b`
 *    (parents missing from the stats are synthesized with zero count);
 *  - inclusiveNs is the span's own aggregated wall time; exclusiveNs
 *    is inclusive minus the children's inclusive, clamped at zero;
 *  - children are ordered by path, so two identical runs produce an
 *    identical tree shape (wall times differ, structure does not).
 *
 * Coverage = attributed / wall: the fraction of the command's wall
 * time inside any named top-level span.  The acceptance bar for the
 * CLI is >= 95% on `lll profile analyze ...`.
 */

#ifndef LLL_OBS_PROFILER_HH
#define LLL_OBS_PROFILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metric.hh"
#include "obs/span.hh"

namespace lll::obs
{

/** One node of the attribution tree. */
struct ProfileNode
{
    std::string name;         //!< last path segment ("total" at root)
    std::string path;         //!< full slash-joined span path
    uint64_t count = 0;       //!< times the span was entered
    double inclusiveNs = 0.0; //!< wall time inside the span
    double exclusiveNs = 0.0; //!< inclusive minus children's inclusive
    std::vector<ProfileNode> children; //!< ordered by path
};

class Profiler
{
  public:
    /** Schema version of the profile JSON emitted by renderJson(). */
    static constexpr int kSchemaVersion = 1;

    struct Report
    {
        ProfileNode root;         //!< synthetic "total" node
        double wallNs = 0.0;      //!< measured command wall time
        double attributedNs = 0.0; //!< sum of top-level span time
        double buildNs = 0.0;     //!< cost of building this report

        /** Fraction of wall time inside named spans (0 when wall 0). */
        double coverage() const
        {
            return wallNs > 0.0 ? attributedNs / wallNs : 0.0;
        }

        /**
         * Up to @p limit nodes ranked by exclusive time (descending,
         * path as tie-break).  Pointers into root's tree.
         */
        std::vector<const ProfileNode *> hotPaths(size_t limit) const;
    };

    /**
     * Build the attribution tree for a command that ran for @p wall_ns
     * from @p stats (a SpanTracker::stats() snapshot taken after the
     * command finished).  Adds its own build cost to the report and,
     * when @p self_counter is given, to that counter (the
     * kSelfOverheadCounter contract).
     */
    static Report build(const std::vector<SpanTracker::Stat> &stats,
                        double wall_ns,
                        CounterMetric *self_counter = nullptr);

    /** Human-readable tree + hot-path ranking (for stderr). */
    static std::string renderText(const Report &report,
                                  size_t hot_limit = 10);

    /** The report as a JSON object (the profile envelope's data). */
    static std::string renderJson(const Report &report,
                                  size_t hot_limit = 10);
};

} // namespace lll::obs

#endif // LLL_OBS_PROFILER_HH
