#include "obs/profiler.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/export.hh"
#include "obs/timer.hh"

namespace lll::obs
{

namespace
{

/** Last slash-separated segment of @p path. */
std::string
lastSegment(const std::string &path)
{
    const size_t slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/**
 * Find or create the node for @p path under @p root.  Intermediate
 * nodes missing from the stats (an outer span still open when the
 * snapshot was taken, or a worker-only inner path) are synthesized
 * with zero count; their inclusive time is filled from children later.
 */
ProfileNode &
nodeFor(ProfileNode &root, const std::string &path)
{
    ProfileNode *cur = &root;
    size_t begin = 0;
    while (begin <= path.size()) {
        size_t slash = path.find('/', begin);
        if (slash == std::string::npos)
            slash = path.size();
        const std::string prefix = path.substr(0, slash);
        const std::string name = path.substr(begin, slash - begin);
        auto it = std::lower_bound(
            cur->children.begin(), cur->children.end(), prefix,
            [](const ProfileNode &n, const std::string &p) {
                return n.path < p;
            });
        if (it == cur->children.end() || it->path != prefix) {
            ProfileNode fresh;
            fresh.name = name;
            fresh.path = prefix;
            it = cur->children.insert(it, std::move(fresh));
        }
        cur = &*it;
        begin = slash + 1;
    }
    return *cur;
}

/**
 * Bottom-up pass: a synthesized node (count 0, no recorded time)
 * inherits the sum of its children's inclusive time; every node's
 * exclusive time is inclusive minus children, clamped at zero (the
 * clamp absorbs clock jitter between nested measurements).
 */
void
finalize(ProfileNode &node)
{
    double child_ns = 0.0;
    for (ProfileNode &child : node.children) {
        finalize(child);
        child_ns += child.inclusiveNs;
    }
    if (node.count == 0 && node.inclusiveNs == 0.0)
        node.inclusiveNs = child_ns;
    node.exclusiveNs = std::max(0.0, node.inclusiveNs - child_ns);
}

void
collect(const ProfileNode &node, std::vector<const ProfileNode *> &out)
{
    for (const ProfileNode &child : node.children) {
        out.push_back(&child);
        collect(child, out);
    }
}

void
renderNode(std::ostringstream &out, const ProfileNode &node,
           double wall_ns, unsigned depth)
{
    const double pct =
        wall_ns > 0.0 ? node.inclusiveNs / wall_ns * 100.0 : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "%6.1f%% %12.3f %12.3f %8llu  ",
                  pct, node.inclusiveNs / 1e6, node.exclusiveNs / 1e6,
                  static_cast<unsigned long long>(node.count));
    out << line;
    for (unsigned i = 0; i < depth; ++i)
        out << "  ";
    out << node.name << "\n";
    for (const ProfileNode &child : node.children)
        renderNode(out, child, wall_ns, depth + 1);
}

void
nodeJson(std::ostringstream &out, const ProfileNode &node)
{
    out << "{\"name\": \"" << jsonEscape(node.name) << "\", \"path\": \""
        << jsonEscape(node.path) << "\", \"count\": " << node.count
        << ", \"inclusive_ns\": " << jsonNumber(node.inclusiveNs)
        << ", \"exclusive_ns\": " << jsonNumber(node.exclusiveNs)
        << ", \"children\": [";
    bool first = true;
    for (const ProfileNode &child : node.children) {
        if (!first)
            out << ", ";
        first = false;
        nodeJson(out, child);
    }
    out << "]}";
}

} // namespace

std::vector<const ProfileNode *>
Profiler::Report::hotPaths(size_t limit) const
{
    std::vector<const ProfileNode *> nodes;
    collect(root, nodes);
    std::sort(nodes.begin(), nodes.end(),
              [](const ProfileNode *a, const ProfileNode *b) {
                  if (a->exclusiveNs != b->exclusiveNs)
                      return a->exclusiveNs > b->exclusiveNs;
                  return a->path < b->path;
              });
    if (nodes.size() > limit)
        nodes.resize(limit);
    return nodes;
}

Profiler::Report
Profiler::build(const std::vector<SpanTracker::Stat> &stats,
                double wall_ns, CounterMetric *self_counter)
{
    WallTimer cost;
    Report report;
    report.wallNs = wall_ns;
    report.root.name = "total";
    report.root.inclusiveNs = wall_ns;
    report.root.count = 1;

    for (const SpanTracker::Stat &s : stats) {
        ProfileNode &node = nodeFor(report.root, s.path);
        node.count = s.count;
        node.inclusiveNs = s.wallNs;
    }

    double attributed = 0.0;
    for (ProfileNode &top : report.root.children) {
        finalize(top);
        attributed += top.inclusiveNs;
    }
    report.attributedNs = attributed;
    report.root.exclusiveNs = std::max(0.0, wall_ns - attributed);

    report.buildNs = cost.elapsedNs();
    if (self_counter)
        self_counter->increment(static_cast<uint64_t>(report.buildNs));
    return report;
}

std::string
Profiler::renderText(const Report &report, size_t hot_limit)
{
    std::ostringstream out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "profile: wall %.3f ms, attributed %.3f ms (%.1f%% "
                  "coverage)\n",
                  report.wallNs / 1e6, report.attributedNs / 1e6,
                  report.coverage() * 100.0);
    out << line;
    out << "  %incl      incl ms      excl ms    calls  span\n";
    renderNode(out, report.root, report.wallNs, 0);

    const std::vector<const ProfileNode *> hot =
        report.hotPaths(hot_limit);
    if (!hot.empty()) {
        out << "hot paths (by exclusive time):\n";
        size_t rank = 1;
        for (const ProfileNode *node : hot) {
            const double pct = report.wallNs > 0.0
                                   ? node->exclusiveNs /
                                         report.wallNs * 100.0
                                   : 0.0;
            std::snprintf(line, sizeof(line),
                          "  %2zu. %-48s %10.3f ms (%5.1f%%)\n", rank++,
                          node->path.c_str(), node->exclusiveNs / 1e6,
                          pct);
            out << line;
        }
    }
    return out.str();
}

std::string
Profiler::renderJson(const Report &report, size_t hot_limit)
{
    std::ostringstream out;
    out << "{\n  \"schema_version\": " << kSchemaVersion
        << ",\n  \"wall_ns\": " << jsonNumber(report.wallNs)
        << ",\n  \"attributed_ns\": " << jsonNumber(report.attributedNs)
        << ",\n  \"coverage\": " << jsonNumber(report.coverage())
        << ",\n  \"build_ns\": " << jsonNumber(report.buildNs)
        << ",\n  \"tree\": ";
    nodeJson(out, report.root);
    out << ",\n  \"hot\": [";
    bool first = true;
    for (const ProfileNode *node : report.hotPaths(hot_limit)) {
        if (!first)
            out << ", ";
        first = false;
        out << "{\"path\": \"" << jsonEscape(node->path)
            << "\", \"exclusive_ns\": " << jsonNumber(node->exclusiveNs)
            << ", \"count\": " << node->count << "}";
    }
    out << "]\n}";
    return out.str();
}

} // namespace lll::obs
