/**
 * @file
 * Tick-driven sampler: the clock owner (the simulator's event queue,
 * wired up in System::attachObservability) invokes sample() every
 * cadence ticks, and the sampler snapshots every sampled gauge in its
 * registry into bounded time-series rings.
 *
 * The sampler itself is clock-agnostic — it has no dependency on the
 * event queue, so the obs layer stays below sim in the dependency
 * order.  Whoever owns the clock schedules the periodic calls.
 */

#ifndef LLL_OBS_SAMPLER_HH
#define LLL_OBS_SAMPLER_HH

#include "obs/registry.hh"

namespace lll::obs
{

/**
 * Periodic snapshotter for one registry.
 */
class Sampler
{
  public:
    struct Params
    {
        /** Snapshot period in ticks (default 250 ns of simulated
         *  time — a 40 us measurement window yields 160 samples). */
        Tick cadence = 250 * ticksPerNs;
        /** Ring capacity of each gauge's time series. */
        size_t seriesCapacity = 4096;
    };

    Sampler(MetricRegistry &registry, Params params)
        : registry_(registry), params_(params)
    {
        lll_assert(params_.cadence > 0, "sampler cadence must be positive");
        registry_.setDefaultSeriesCapacity(params_.seriesCapacity);
    }

    explicit Sampler(MetricRegistry &registry)
        : Sampler(registry, Params())
    {
    }

    /** Take one snapshot at time @p now (no-op when disarmed). */
    void sample(Tick now);

    Tick cadence() const { return params_.cadence; }
    bool armed() const { return armed_; }

    /** Stop sampling; the periodic event chain dies off. */
    void disarm() { armed_ = false; }

    /** Snapshots taken by this sampler. */
    uint64_t taken() const { return taken_; }

    MetricRegistry &registry() { return registry_; }

  private:
    MetricRegistry &registry_;
    Params params_;
    bool armed_ = true;
    uint64_t taken_ = 0;
};

} // namespace lll::obs

#endif // LLL_OBS_SAMPLER_HH
