/**
 * @file
 * Machine-readable exporters for the observability layer.
 *
 * exportJson() dumps a registry — counters, gauges, histograms, sampled
 * time series and annotations — plus optional span timings and caller-
 * provided extra sections (pre-serialized JSON, e.g. a RequestTracer
 * window) as one JSON object.  exportCsv() emits every time series in
 * long form (`metric,when_ns,value`), ready for pandas/gnuplot.
 */

#ifndef LLL_OBS_EXPORT_HH
#define LLL_OBS_EXPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hh"
#include "obs/span.hh"

namespace lll::obs
{

/** Raw JSON value to splice into the top-level export object. */
using JsonSection = std::pair<std::string, std::string>;

/** Escape @p s for use inside a JSON string literal (no quotes added). */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number (finite; non-finite becomes null). */
std::string jsonNumber(double v);

/**
 * Serialize @p registry (and, when given, @p spans and @p extra
 * sections) as a JSON object.
 */
std::string exportJson(const MetricRegistry &registry,
                       const SpanTracker *spans = nullptr,
                       const std::vector<JsonSection> &extra = {});

/** Serialize every time series in @p registry as long-form CSV. */
std::string exportCsv(const MetricRegistry &registry);

/** Write @p content to @p path ("-" writes to stdout); true on success. */
bool writeExport(const std::string &path, const std::string &content);

} // namespace lll::obs

#endif // LLL_OBS_EXPORT_HH
