/**
 * @file
 * Machine-readable exporters for the observability layer.
 *
 * exportJson() dumps a registry — counters, gauges, histograms, sampled
 * time series and annotations — plus optional span timings and caller-
 * provided extra sections (pre-serialized JSON, e.g. a RequestTracer
 * window) as one JSON object.  exportCsv() emits every time series in
 * long form (`metric,when_ns,value`), ready for pandas/gnuplot.
 */

#ifndef LLL_OBS_EXPORT_HH
#define LLL_OBS_EXPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hh"
#include "obs/span.hh"
#include "util/status.hh"

namespace lll::obs
{

/** Raw JSON value to splice into the top-level export object. */
using JsonSection = std::pair<std::string, std::string>;

/** Version of the shared `--json` envelope emitted by jsonEnvelope(). */
constexpr int kJsonEnvelopeVersion = 1;

/**
 * Wrap a subcommand's machine-readable output in the one envelope
 * every `lll <cmd> --json` emits (README "JSON envelope"):
 *
 *   {"schema_version": 1, "command": "<cmd>",
 *    "status": {"code": "ok", "exit": 0, "message": ""},
 *    "data": <data_json>, "telemetry": <telemetry_json>}
 *
 * @p data_json and @p telemetry_json are pre-serialized JSON values;
 * an empty string becomes null.  @p exit_code is the process exit the
 * command is about to return with — it is part of the envelope so a
 * consumer never has to re-derive lint/serve exit semantics.
 */
std::string jsonEnvelope(const std::string &command,
                         const util::Status &status, int exit_code,
                         const std::string &data_json,
                         const std::string &telemetry_json = {});

/** Escape @p s for use inside a JSON string literal (no quotes added). */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number (finite; non-finite becomes null). */
std::string jsonNumber(double v);

/**
 * Serialize @p registry (and, when given, @p spans and @p extra
 * sections) as a JSON object.
 */
std::string exportJson(const MetricRegistry &registry,
                       const SpanTracker *spans = nullptr,
                       const std::vector<JsonSection> &extra = {});

/** Serialize every time series in @p registry as long-form CSV. */
std::string exportCsv(const MetricRegistry &registry);

/** Write @p content to @p path ("-" writes to stdout); true on success. */
bool writeExport(const std::string &path, const std::string &content);

} // namespace lll::obs

#endif // LLL_OBS_EXPORT_HH
