#include <cstdio>
#include <sstream>

#include "obs/export.hh"

namespace lll::obs
{

std::string
exportCsv(const MetricRegistry &registry)
{
    std::ostringstream out;
    out << "metric,when_ns,value\n";
    char buf[160];
    for (const auto &[name, ts] : registry.allSeries()) {
        for (const TimeSeries::Sample &s : ts.samples()) {
            std::snprintf(buf, sizeof(buf), "%s,%.3f,%.9g\n", name.c_str(),
                          ticksToNs(s.when), s.value);
            out << buf;
        }
    }
    return out.str();
}

} // namespace lll::obs
