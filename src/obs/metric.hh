/**
 * @file
 * Metric primitives for the observability layer: counters, gauges,
 * log2-bucketed histograms and bounded time-series rings.
 *
 * These deliberately know nothing about the simulator; they depend only
 * on util so every layer (sim, core, workloads, tools) can publish
 * metrics without dependency cycles.  The registry (registry.hh) owns
 * instances of these types keyed by dotted names such as
 * `sim.mshr.l1.0.occupancy`.
 */

#ifndef LLL_OBS_METRIC_HH
#define LLL_OBS_METRIC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace lll::obs
{

/**
 * A monotonically increasing event count.
 */
class CounterMetric
{
  public:
    void increment(uint64_t n = 1) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/**
 * How a gauge obtains and publishes its value.
 */
enum class GaugeMode
{
    Value,      //!< last value set explicitly via set()
    Callback,   //!< evaluated on demand from a reader function
    Rate,       //!< d(reader)/dt computed at each sampler snapshot
};

/**
 * A point-in-time observation: either an explicitly set value, a
 * callback into the instrumented component, or a rate derived from a
 * cumulative callback by the sampler.
 */
class GaugeMetric
{
  public:
    using Reader = std::function<double()>;

    /** A Value-mode gauge. */
    GaugeMetric() = default;

    /** A Callback- or Rate-mode gauge; @p scale multiplies the result. */
    GaugeMetric(Reader reader, GaugeMode mode, double scale = 1.0)
        : reader_(std::move(reader)), mode_(mode), scale_(scale)
    {
    }

    GaugeMode mode() const { return mode_; }
    bool sampled() const { return sampled_; }
    void setSampled(bool s) { sampled_ = s; }

    void
    set(double v)
    {
        value_ = v;
    }

    /**
     * Current value.  For Rate gauges this is the rate computed at the
     * last snapshot (rates only advance when a sampler drives them).
     */
    double
    read() const
    {
        if (mode_ == GaugeMode::Callback)
            return reader_() * scale_;
        return value_;
    }

    /**
     * Advance a Rate gauge to @p now: the published value becomes the
     * change in the cumulative reader per nanosecond, times the scale.
     * A drop in the cumulative level (a stats reset between snapshots)
     * publishes zero for that interval instead of a negative rate.
     */
    void
    advance(Tick now)
    {
        if (mode_ != GaugeMode::Rate)
            return;
        double level = reader_();
        if (havePrev_ && now > prevTick_) {
            double dt_ns = ticksToNs(now - prevTick_);
            value_ = level >= prevLevel_
                         ? (level - prevLevel_) / dt_ns * scale_
                         : 0.0;
        }
        prevLevel_ = level;
        prevTick_ = now;
        havePrev_ = true;
    }

  private:
    Reader reader_;
    GaugeMode mode_ = GaugeMode::Value;
    double scale_ = 1.0;
    double value_ = 0.0;
    bool sampled_ = false;

    double prevLevel_ = 0.0;
    Tick prevTick_ = 0;
    bool havePrev_ = false;
};

/**
 * Histogram with power-of-two bucket boundaries: bucket k counts samples
 * in [2^(k-1), 2^k), bucket 0 counts samples below 1.  Constant size, so
 * it absorbs any latency/occupancy range without configuration.
 */
class Log2Histogram
{
  public:
    static constexpr size_t kBuckets = 64;

    void sample(double v);

    uint64_t total() const { return total_; }
    double mean() const
    {
        return total_ ? sum_ / static_cast<double>(total_) : 0.0;
    }
    /** Smallest sample recorded (0.0 while empty). */
    double min() const { return total_ ? min_ : 0.0; }
    /** Largest sample recorded (0.0 while empty). */
    double max() const { return total_ ? max_ : 0.0; }
    uint64_t bucket(size_t k) const { return counts_.at(k); }

    /** Upper bound of bucket @p k (lower bound of k+1). */
    static double bucketUpper(size_t k);

    /**
     * Value below which @p frac of the samples fall.
     *
     * Defined for every histogram state — no division by zero, no UB:
     *  - empty histogram: 0.0;
     *  - a single sample (or frac <= 0 / frac >= 1): the exact
     *    recorded min/max, not a bucket boundary;
     *  - otherwise: the target rank's bucket is located and the value
     *    linearly interpolated across it, then clamped to the observed
     *    [min, max] — so the overflow top bucket (which spans to
     *    2^63) can never report past the largest real sample.
     *
     * Error bound: the result lies inside the target sample's bucket
     * [2^(k-1), 2^k), so the absolute error is below the bucket width
     * 2^(k-1) and the relative error below 2x (one log2 bucket); the
     * min/max clamp makes the 0th/100th percentiles exact.
     */
    double percentile(double frac) const;

    /** Add @p other's samples into this histogram bucket-wise. */
    void merge(const Log2Histogram &other);

    void reset();

  private:
    std::array<uint64_t, kBuckets> counts_{};
    uint64_t total_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Bounded ring of (tick, value) samples; the sampler pushes one entry
 * per snapshot and the oldest entries fall off once capacity is hit, so
 * long runs keep the most recent trajectory at fixed memory cost.
 */
class TimeSeries
{
  public:
    struct Sample
    {
        Tick when = 0;
        double value = 0.0;
    };

    explicit TimeSeries(size_t capacity = 4096) : capacity_(capacity)
    {
        ring_.reserve(capacity_);
    }

    void push(Tick when, double value);

    /** Retained samples, oldest first. */
    std::vector<Sample> samples() const;

    /** Samples currently retained. */
    size_t size() const { return ring_.size(); }
    size_t capacity() const { return capacity_; }

    /** Samples pushed since construction (including evicted ones). */
    uint64_t total() const { return total_; }

    void clear();

  private:
    size_t capacity_;
    std::vector<Sample> ring_;
    size_t head_ = 0;
    uint64_t total_ = 0;
};

} // namespace lll::obs

#endif // LLL_OBS_METRIC_HH
