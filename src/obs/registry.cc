#include "obs/registry.hh"

#include <algorithm>

namespace lll::obs
{

CounterMetric &
MetricRegistry::counter(const std::string &name)
{
    return counters_[name];
}

GaugeMetric &
MetricRegistry::registerGauge(const std::string &name,
                              GaugeMetric::Reader reader, GaugeMode mode,
                              GaugeOptions options)
{
    GaugeMetric &g = gauges_[name];
    g = GaugeMetric(std::move(reader), mode, options.scale);
    g.setSampled(options.sampled);
    return g;
}

GaugeMetric &
MetricRegistry::setGauge(const std::string &name, double value)
{
    GaugeMetric &g = gauges_[name];
    if (g.mode() == GaugeMode::Value)
        g.set(value);
    else
        g = [&] {
            GaugeMetric v;
            v.set(value);
            return v;
        }();
    return g;
}

void
MetricRegistry::freezeGauge(const std::string &name)
{
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        return;
    bool sampled = it->second.sampled();
    double last = it->second.read();
    GaugeMetric frozen;
    frozen.set(last);
    frozen.setSampled(sampled);
    it->second = frozen;
}

Log2Histogram &
MetricRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

void
MetricRegistry::annotate(const std::string &name, const std::string &value)
{
    annotations_[name] = value;
}

void
MetricRegistry::setDefaultSeriesCapacity(size_t capacity)
{
    if (capacity > 0)
        seriesCapacity_ = capacity;
}

void
MetricRegistry::sampleAll(Tick now)
{
    for (auto &[name, gauge] : gauges_) {
        gauge.advance(now);
        if (!gauge.sampled())
            continue;
        auto it = series_.find(name);
        if (it == series_.end()) {
            it = series_.emplace(name, TimeSeries(seriesCapacity_)).first;
        }
        it->second.push(now, gauge.read());
    }
    ++snapshots_;
}

const TimeSeries *
MetricRegistry::series(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

void
MetricRegistry::mergeFrom(const MetricRegistry &other)
{
    for (const auto &[name, counter] : other.counters_)
        counters_[name].increment(counter.value());
    for (const auto &[name, gauge] : other.gauges_) {
        GaugeMetric &g = setGauge(name, gauge.read());
        g.setSampled(g.sampled() || gauge.sampled());
    }
    for (const auto &[name, hist] : other.histograms_)
        histograms_[name].merge(hist);
    for (const auto &[name, series] : other.series_) {
        auto it = series_.find(name);
        if (it == series_.end()) {
            it = series_
                     .emplace(name, TimeSeries(std::max(seriesCapacity_,
                                                        series.capacity())))
                     .first;
        }
        for (const TimeSeries::Sample &s : series.samples())
            it->second.push(s.when, s.value);
    }
    for (const auto &[name, value] : other.annotations_)
        annotations_[name] = value;
    snapshots_ += other.snapshots_;
}

void
MetricRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    series_.clear();
    annotations_.clear();
    snapshots_ = 0;
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry instance;
    return instance;
}

} // namespace lll::obs
