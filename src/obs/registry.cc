#include "obs/registry.hh"

namespace lll::obs
{

CounterMetric &
MetricRegistry::counter(const std::string &name)
{
    return counters_[name];
}

GaugeMetric &
MetricRegistry::registerGauge(const std::string &name,
                              GaugeMetric::Reader reader, GaugeMode mode,
                              GaugeOptions options)
{
    GaugeMetric &g = gauges_[name];
    g = GaugeMetric(std::move(reader), mode, options.scale);
    g.setSampled(options.sampled);
    return g;
}

GaugeMetric &
MetricRegistry::setGauge(const std::string &name, double value)
{
    GaugeMetric &g = gauges_[name];
    if (g.mode() == GaugeMode::Value)
        g.set(value);
    else
        g = [&] {
            GaugeMetric v;
            v.set(value);
            return v;
        }();
    return g;
}

void
MetricRegistry::freezeGauge(const std::string &name)
{
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        return;
    bool sampled = it->second.sampled();
    double last = it->second.read();
    GaugeMetric frozen;
    frozen.set(last);
    frozen.setSampled(sampled);
    it->second = frozen;
}

Log2Histogram &
MetricRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

void
MetricRegistry::annotate(const std::string &name, const std::string &value)
{
    annotations_[name] = value;
}

void
MetricRegistry::setDefaultSeriesCapacity(size_t capacity)
{
    if (capacity > 0)
        seriesCapacity_ = capacity;
}

void
MetricRegistry::sampleAll(Tick now)
{
    for (auto &[name, gauge] : gauges_) {
        gauge.advance(now);
        if (!gauge.sampled())
            continue;
        auto it = series_.find(name);
        if (it == series_.end()) {
            it = series_.emplace(name, TimeSeries(seriesCapacity_)).first;
        }
        it->second.push(now, gauge.read());
    }
    ++snapshots_;
}

const TimeSeries *
MetricRegistry::series(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

void
MetricRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    series_.clear();
    annotations_.clear();
    snapshots_ = 0;
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry instance;
    return instance;
}

} // namespace lll::obs
