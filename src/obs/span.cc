#include "obs/span.hh"

#include "util/logging.hh"

namespace lll::obs
{

void
SpanTracker::begin(const std::string &name)
{
    std::string path =
        stack_.empty() ? name : stack_.back().path + "/" + name;
    stack_.push_back(Open{std::move(path), Clock::now()});
}

void
SpanTracker::end()
{
    lll_assert(!stack_.empty(), "span end() without a matching begin()");
    const Open &open = stack_.back();
    double ns = wallDeltaNs(open.start, Clock::now());
    Agg &agg = agg_[open.path];
    agg.depth = static_cast<unsigned>(stack_.size());
    ++agg.count;
    agg.wallNs += ns;
    stack_.pop_back();
}

std::vector<SpanTracker::Stat>
SpanTracker::stats() const
{
    std::vector<Stat> out;
    out.reserve(agg_.size());
    for (const auto &[path, agg] : agg_)
        out.push_back(Stat{path, agg.depth, agg.count, agg.wallNs});
    return out;
}

void
SpanTracker::merge(const std::vector<Stat> &stats)
{
    for (const Stat &s : stats) {
        Agg &agg = agg_[s.path];
        agg.depth = s.depth;
        agg.count += s.count;
        agg.wallNs += s.wallNs;
    }
}

void
SpanTracker::reset()
{
    stack_.clear();
    agg_.clear();
}

SpanTracker &
SpanTracker::global()
{
    thread_local SpanTracker instance;
    return instance;
}

} // namespace lll::obs
