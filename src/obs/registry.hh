/**
 * @file
 * The process-wide metric registry: counters, gauges and histograms
 * registered by dotted name (`sim.mshr.l1.0.occupancy`,
 * `sim.memctrl.bw_gbps`, `analyzer.n_avg`, ...), plus the bounded
 * time-series rings the sampler snapshots gauges into.
 *
 * Components publish through three channels:
 *  - counter(name)++                    for event counts;
 *  - registerGauge(name, reader, ...)   for live component state (the
 *    reader is invoked at sample/export time);
 *  - setGauge(name, v)                  for one-shot derived values such
 *    as the analyzer's n_avg.
 *
 * Callback gauges hold a pointer into the instrumented component, so a
 * component that dies before the registry must freezeGauge() its names
 * first (System does this in its destructor): the gauge keeps its last
 * value and the time series stays exportable.
 */

#ifndef LLL_OBS_REGISTRY_HH
#define LLL_OBS_REGISTRY_HH

#include <map>
#include <string>

#include "obs/metric.hh"
#include "util/names.hh"

namespace lll::obs
{

/**
 * Counter accumulating the observability layer's own host-time cost in
 * nanoseconds: every sampler snapshot and profiler tree build adds its
 * wall time here, so each `--json` telemetry block prices the
 * measurement itself.  Wall-clock valued, hence nondeterministic —
 * determinism comparisons must exclude it (like span wall times).
 */
inline constexpr const char *kSelfOverheadCounter =
    util::names::kObsSelfOverheadNs;

struct GaugeOptions
{
    /** Snapshot this gauge into a time-series ring on every
     *  sampler tick. */
    bool sampled = false;
    /** Multiplier applied to the reader's result (Callback) or to
     *  the per-nanosecond rate (Rate). */
    double scale = 1.0;
};

/**
 * Name → metric store.  Deterministically ordered (std::map) so exports
 * are diffable run to run.
 */
class MetricRegistry
{
  public:
    using GaugeOptions = obs::GaugeOptions;

    /** Get or create a counter. */
    CounterMetric &counter(const std::string &name);

    /**
     * Register (or replace) a live gauge.  @p mode Rate derives a
     * per-nanosecond rate of the cumulative @p reader at each sampler
     * snapshot; Callback republishes the reader's value directly.
     */
    GaugeMetric &registerGauge(const std::string &name,
                               GaugeMetric::Reader reader, GaugeMode mode,
                               GaugeOptions options = GaugeOptions());

    /** Set a Value-mode gauge (get-or-create). */
    GaugeMetric &setGauge(const std::string &name, double value);

    /**
     * Drop a gauge's reader, keeping its last value — call before the
     * component the reader points into is destroyed.
     */
    void freezeGauge(const std::string &name);

    /** Get or create a histogram. */
    Log2Histogram &histogram(const std::string &name);

    /** Attach a free-form string to a metric name (exported as-is). */
    void annotate(const std::string &name, const std::string &value);

    /** Ring capacity used for time series created by sampleAll(). */
    void setDefaultSeriesCapacity(size_t capacity);

    /**
     * One sampler tick: advance every Rate gauge to @p now and push
     * every sampled gauge's current value into its time series.
     */
    void sampleAll(Tick now);

    /** The ring behind a sampled gauge, or nullptr before first sample. */
    const TimeSeries *series(const std::string &name) const;

    /** Snapshots taken via sampleAll() since construction/clear. */
    uint64_t snapshots() const { return snapshots_; }

    // Bulk access for exporters.
    const std::map<std::string, CounterMetric> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, GaugeMetric> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, Log2Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, TimeSeries> &allSeries() const
    {
        return series_;
    }
    const std::map<std::string, std::string> &annotations() const
    {
        return annotations_;
    }

    /**
     * Fold @p other into this registry — the sweep runner's
     * merge-after-join contract (DESIGN.md §11): counters add, gauges
     * take the other's current value (worker gauges are frozen by the
     * time a task completes, so read() is safe), histograms add
     * bucket-wise, time-series samples append in push order, and
     * annotations overwrite.  Call on the main thread, once per task,
     * in deterministic task order.
     */
    void mergeFrom(const MetricRegistry &other);

    /** Drop every metric, series and annotation. */
    void clear();

    /** The process-wide registry. */
    static MetricRegistry &global();

  private:
    std::map<std::string, CounterMetric> counters_;
    std::map<std::string, GaugeMetric> gauges_;
    std::map<std::string, Log2Histogram> histograms_;
    std::map<std::string, TimeSeries> series_;
    std::map<std::string, std::string> annotations_;
    size_t seriesCapacity_ = 4096;
    uint64_t snapshots_ = 0;
};

} // namespace lll::obs

#endif // LLL_OBS_REGISTRY_HH
