#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/export.hh"

namespace lll::obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

namespace
{

/** Emit `"key": ` */
void
key(std::ostringstream &out, const std::string &name)
{
    out << '"' << jsonEscape(name) << "\": ";
}

template <typename Map, typename Fn>
void
object(std::ostringstream &out, const Map &map, Fn &&value)
{
    out << '{';
    bool first = true;
    for (const auto &[name, entry] : map) {
        if (!first)
            out << ", ";
        first = false;
        key(out, name);
        value(entry);
    }
    out << '}';
}

} // namespace

std::string
exportJson(const MetricRegistry &registry, const SpanTracker *spans,
           const std::vector<JsonSection> &extra)
{
    std::ostringstream out;
    out << "{\n  ";

    key(out, "counters");
    object(out, registry.counters(),
           [&](const CounterMetric &c) { out << c.value(); });
    out << ",\n  ";

    key(out, "gauges");
    object(out, registry.gauges(),
           [&](const GaugeMetric &g) { out << jsonNumber(g.read()); });
    out << ",\n  ";

    key(out, "histograms");
    object(out, registry.histograms(), [&](const Log2Histogram &h) {
        out << "{\"total\": " << h.total()
            << ", \"mean\": " << jsonNumber(h.mean())
            << ", \"p50\": " << jsonNumber(h.percentile(0.50))
            << ", \"p90\": " << jsonNumber(h.percentile(0.90))
            << ", \"p99\": " << jsonNumber(h.percentile(0.99))
            << ", \"buckets\": [";
        bool first = true;
        for (size_t k = 0; k < Log2Histogram::kBuckets; ++k) {
            if (!h.bucket(k))
                continue;
            if (!first)
                out << ", ";
            first = false;
            out << "[" << jsonNumber(Log2Histogram::bucketUpper(k)) << ", "
                << h.bucket(k) << "]";
        }
        out << "]}";
    });
    out << ",\n  ";

    key(out, "series");
    object(out, registry.allSeries(), [&](const TimeSeries &ts) {
        out << "{\"total\": " << ts.total() << ", \"samples\": [";
        bool first = true;
        for (const TimeSeries::Sample &s : ts.samples()) {
            if (!first)
                out << ", ";
            first = false;
            out << "[" << jsonNumber(ticksToNs(s.when)) << ", "
                << jsonNumber(s.value) << "]";
        }
        out << "]}";
    });
    out << ",\n  ";

    key(out, "annotations");
    object(out, registry.annotations(), [&](const std::string &v) {
        out << '"' << jsonEscape(v) << '"';
    });

    if (spans) {
        out << ",\n  ";
        key(out, "spans");
        out << '[';
        bool first = true;
        for (const SpanTracker::Stat &s : spans->stats()) {
            if (!first)
                out << ", ";
            first = false;
            out << "{\"path\": \"" << jsonEscape(s.path)
                << "\", \"depth\": " << s.depth
                << ", \"count\": " << s.count
                << ", \"wall_ns\": " << jsonNumber(s.wallNs) << "}";
        }
        out << ']';
    }

    for (const JsonSection &section : extra) {
        out << ",\n  ";
        key(out, section.first);
        out << section.second;
    }

    out << "\n}\n";
    return out.str();
}

namespace
{

/** Embedded pre-serialized values keep their own layout but must not
 *  carry trailing newlines into the envelope. */
std::string
trimmedOrNull(const std::string &json)
{
    size_t end = json.size();
    while (end > 0 && (json[end - 1] == '\n' || json[end - 1] == ' ' ||
                       json[end - 1] == '\t' || json[end - 1] == '\r')) {
        --end;
    }
    return end == 0 ? std::string("null") : json.substr(0, end);
}

} // namespace

std::string
jsonEnvelope(const std::string &command, const util::Status &status,
             int exit_code, const std::string &data_json,
             const std::string &telemetry_json)
{
    std::ostringstream out;
    out << "{\n  \"schema_version\": " << kJsonEnvelopeVersion
        << ",\n  \"command\": \"" << jsonEscape(command)
        << "\",\n  \"status\": {\"code\": \""
        << util::errorCodeName(status.code())
        << "\", \"exit\": " << exit_code << ", \"message\": \""
        << jsonEscape(status.message()) << "\"},\n  \"data\": "
        << trimmedOrNull(data_json) << ",\n  \"telemetry\": "
        << trimmedOrNull(telemetry_json) << "\n}\n";
    return out.str();
}

bool
writeExport(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::fwrite(content.data(), 1, content.size(), stdout);
        return true;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    size_t written = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    return written == content.size();
}

} // namespace lll::obs
