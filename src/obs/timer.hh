/**
 * @file
 * The observability layer's one host-time source.
 *
 * Every wall-clock measurement in the repo — span trackers, the
 * profiler, `lll bench` trials, per-request serve latencies — reads
 * this monotonic clock, so numbers from different subsystems are
 * directly comparable and a future clock swap (e.g. rdtsc fast path)
 * happens in exactly one place.
 */

#ifndef LLL_OBS_TIMER_HH
#define LLL_OBS_TIMER_HH

#include <chrono>
#include <cstdint>

namespace lll::obs
{

/** The monotonic host clock behind all obs wall-time measurements. */
using WallClock = std::chrono::steady_clock;

/** Nanoseconds between two WallClock points as a double. */
inline double
wallDeltaNs(WallClock::time_point start, WallClock::time_point stop)
{
    return std::chrono::duration<double, std::nano>(stop - start)
        .count();
}

/**
 * A running stopwatch started at construction.  Reading it does not
 * stop it, so one timer can mark several stage boundaries:
 *
 *   WallTimer t;
 *   ... stage 1 ...
 *   double s1 = t.elapsedNs();
 *   ... stage 2 ...
 *   double s2 = t.elapsedNs() - s1;
 */
class WallTimer
{
  public:
    WallTimer() : start_(WallClock::now()) {}

    /** Nanoseconds since construction or the last restart(). */
    double elapsedNs() const { return wallDeltaNs(start_, WallClock::now()); }

    /** Reset the origin to now. */
    void restart() { start_ = WallClock::now(); }

    WallClock::time_point startedAt() const { return start_; }

  private:
    WallClock::time_point start_;
};

} // namespace lll::obs

#endif // LLL_OBS_TIMER_HH
