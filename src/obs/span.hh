/**
 * @file
 * Lightweight phase spans: scoped, nesting wall-clock timers that tag a
 * region of host execution with a name, e.g. a workload phase or one
 * experiment stage.
 *
 *   {
 *       LLL_SPAN("isx.histogram");
 *       ... run the phase ...
 *   }   // duration accumulated under the current span path
 *
 * Spans nest: a span opened inside another contributes to the path
 * `outer/inner`, so exporters can show where time went per phase.  The
 * tracker aggregates by full path (count + total wall time) rather than
 * retaining every interval, keeping overhead and memory constant.
 *
 * Threading: global() is thread-local, so LLL_SPAN is race-free from
 * sweep workers without any locking; each worker records into its own
 * tracker and the sweep runner merge()s the per-task stats into the
 * main thread's tracker after join, in deterministic task order (the
 * merge-after-join contract, DESIGN.md §11).
 */

#ifndef LLL_OBS_SPAN_HH
#define LLL_OBS_SPAN_HH

#include <map>
#include <string>
#include <vector>

#include "obs/timer.hh"

namespace lll::obs
{

/**
 * Aggregating span stack.  Single-threaded; concurrent use goes through
 * the per-thread global() instance plus merge().
 */
class SpanTracker
{
  public:
    struct Stat
    {
        std::string path;      //!< slash-joined span names, outer first
        unsigned depth = 0;    //!< nesting depth (top level = 1)
        uint64_t count = 0;    //!< times this path was entered
        double wallNs = 0.0;   //!< total wall-clock time inside
    };

    /** Open a span named @p name nested under the current one. */
    void begin(const std::string &name);

    /** Close the innermost open span. */
    void end();

    /** Currently open spans. */
    size_t depth() const { return stack_.size(); }

    /** Aggregated per-path statistics, sorted by path. */
    std::vector<Stat> stats() const;

    /**
     * Fold per-path aggregates (a worker tracker's stats()) into this
     * tracker: counts and wall time add, paths union.  The sweep runner
     * calls this on the main thread after joining its workers.
     */
    void merge(const std::vector<Stat> &stats);

    /** Forget all aggregates and abandon open spans. */
    void reset();

    /** The calling thread's tracker — what LLL_SPAN uses. */
    static SpanTracker &global();

  private:
    // All span durations come from the obs layer's single wall-clock
    // source (timer.hh) so spans, the profiler and bench trials agree.
    using Clock = WallClock;

    struct Open
    {
        std::string path;
        Clock::time_point start;
    };

    struct Agg
    {
        unsigned depth = 0;
        uint64_t count = 0;
        double wallNs = 0.0;
    };

    std::vector<Open> stack_;
    std::map<std::string, Agg> agg_;
};

/**
 * RAII span handle; prefer the LLL_SPAN macro.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const std::string &name,
                        SpanTracker &tracker = SpanTracker::global())
        : tracker_(tracker)
    {
        tracker_.begin(name);
    }

    ~ScopedSpan() { tracker_.end(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanTracker &tracker_;
};

} // namespace lll::obs

#define LLL_SPAN_CAT2(a, b) a##b
#define LLL_SPAN_CAT(a, b) LLL_SPAN_CAT2(a, b)

/** Open a span for the rest of the enclosing scope. */
#define LLL_SPAN(name)                                                      \
    ::lll::obs::ScopedSpan LLL_SPAN_CAT(lll_span_, __COUNTER__)(name)

#endif // LLL_OBS_SPAN_HH
