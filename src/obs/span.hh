/**
 * @file
 * Lightweight phase spans: scoped, nesting wall-clock timers that tag a
 * region of host execution with a name, e.g. a workload phase or one
 * experiment stage.
 *
 *   {
 *       LLL_SPAN("isx.histogram");
 *       ... run the phase ...
 *   }   // duration accumulated under the current span path
 *
 * Spans nest: a span opened inside another contributes to the path
 * `outer/inner`, so exporters can show where time went per phase.  The
 * tracker aggregates by full path (count + total wall time) rather than
 * retaining every interval, keeping overhead and memory constant.
 */

#ifndef LLL_OBS_SPAN_HH
#define LLL_OBS_SPAN_HH

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace lll::obs
{

/**
 * Aggregating span stack.  Single-threaded, like the simulator.
 */
class SpanTracker
{
  public:
    struct Stat
    {
        std::string path;      //!< slash-joined span names, outer first
        unsigned depth = 0;    //!< nesting depth (top level = 1)
        uint64_t count = 0;    //!< times this path was entered
        double wallNs = 0.0;   //!< total wall-clock time inside
    };

    /** Open a span named @p name nested under the current one. */
    void begin(const std::string &name);

    /** Close the innermost open span. */
    void end();

    /** Currently open spans. */
    size_t depth() const { return stack_.size(); }

    /** Aggregated per-path statistics, sorted by path. */
    std::vector<Stat> stats() const;

    /** Forget all aggregates and abandon open spans. */
    void reset();

    /** The process-wide tracker LLL_SPAN uses. */
    static SpanTracker &global();

  private:
    using Clock = std::chrono::steady_clock;

    struct Open
    {
        std::string path;
        Clock::time_point start;
    };

    struct Agg
    {
        unsigned depth = 0;
        uint64_t count = 0;
        double wallNs = 0.0;
    };

    std::vector<Open> stack_;
    std::map<std::string, Agg> agg_;
};

/**
 * RAII span handle; prefer the LLL_SPAN macro.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const std::string &name,
                        SpanTracker &tracker = SpanTracker::global())
        : tracker_(tracker)
    {
        tracker_.begin(name);
    }

    ~ScopedSpan() { tracker_.end(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanTracker &tracker_;
};

} // namespace lll::obs

#define LLL_SPAN_CAT2(a, b) a##b
#define LLL_SPAN_CAT(a, b) LLL_SPAN_CAT2(a, b)

/** Open a span for the rest of the enclosing scope. */
#define LLL_SPAN(name)                                                      \
    ::lll::obs::ScopedSpan LLL_SPAN_CAT(lll_span_, __COUNTER__)(name)

#endif // LLL_OBS_SPAN_HH
