/**
 * @file
 * A vendor-filtered view of one measurement window's counters.
 *
 * The bank is constructed from a RunResult (the simulator's ground truth)
 * but read through the vendor visibility matrix: a request for an event
 * the vendor does not expose returns std::nullopt, exactly like a PMU
 * programming failure on real hardware.  The analyzer layer restricts
 * itself to readOrDie() on portable events only.
 */

#ifndef LLL_COUNTERS_COUNTER_BANK_HH
#define LLL_COUNTERS_COUNTER_BANK_HH

#include <array>
#include <cstdint>
#include <optional>

#include "counters/event_kind.hh"
#include "counters/vendor_matrix.hh"
#include "platforms/platform.hh"
#include "sim/system.hh"

namespace lll::counters
{

/**
 * Counter values for one routine's measurement window.
 */
class CounterBank
{
  public:
    /**
     * Snapshot the window described by @p run on a platform of vendor
     * @p vendor running at @p freq_ghz.
     */
    CounterBank(const sim::RunResult &run, platforms::Vendor vendor,
                double freq_ghz);

    /** Read an event; nullopt when the vendor does not expose it. */
    std::optional<uint64_t> read(EventKind kind) const;

    /** Read an event that must be visible (fatal otherwise). */
    uint64_t readOrDie(EventKind kind) const;

    platforms::Vendor vendor() const { return vendor_; }

    /** Window length in seconds (wall clock of the routine). */
    double seconds() const { return seconds_; }

  private:
    platforms::Vendor vendor_;
    double seconds_;
    std::array<uint64_t, static_cast<size_t>(EventKind::NumEvents)> raw_{};
};

/**
 * Per-routine bandwidth profile the way CrayPat reports it: derived only
 * from portable counters (memory reads/writes and time).
 */
struct RoutineProfile
{
    std::string routine;
    double seconds = 0.0;
    double readGBs = 0.0;
    double writeGBs = 0.0;
    double totalGBs = 0.0;

    /** Demand share of memory reads; meaningful only when known. */
    double demandFraction = 1.0;
    bool demandFractionKnown = false;
};

/**
 * Builds RoutineProfiles for a platform, mimicking CrayPat's default
 * output (observed bandwidth per routine).
 */
class RoutineProfiler
{
  public:
    explicit RoutineProfiler(const platforms::Platform &platform);

    /** Profile one routine's measurement window. */
    RoutineProfile
    profile(const sim::RunResult &run, const std::string &routine) const;

  private:
    platforms::Platform platform_;
};

} // namespace lll::counters

#endif // LLL_COUNTERS_COUNTER_BANK_HH
