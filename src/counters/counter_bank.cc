#include "counters/counter_bank.hh"

#include "util/logging.hh"

namespace lll::counters
{

CounterBank::CounterBank(const sim::RunResult &run,
                         platforms::Vendor vendor, double freq_ghz)
    : vendor_(vendor), seconds_(run.measureSeconds)
{
    auto set = [this](EventKind kind, uint64_t v) {
        raw_[static_cast<size_t>(kind)] = v;
    };
    set(EventKind::Cycles,
        static_cast<uint64_t>(run.measureSeconds * freq_ghz * 1e9));
    set(EventKind::MemReadLines, run.memReadLines);
    set(EventKind::MemWriteLines, run.memWriteLines);
    set(EventKind::L1DemandMisses, run.l1DemandMisses);
    set(EventKind::L2DemandMisses, run.l2DemandMisses);
    set(EventKind::HwPrefetchMemLines, run.memHwPrefetchLines);
    set(EventKind::SwPrefetchMemLines, run.memSwPrefetchLines);
    set(EventKind::L1MshrFullStalls, run.l1FullStalls);
    set(EventKind::L2MshrFullStalls, run.l2FullStalls);
    // The Intel load-latency facility overcounts (TLB walks, replays —
    // §II of the paper); model that bias coarsely as "most misses look
    // slow" when true latency is high.
    set(EventKind::LoadLatencyAbove512,
        run.avgMemLatencyNs > 150.0 ? run.l1DemandMisses * 3 / 4
                                    : run.l1DemandMisses / 10);
}

std::optional<uint64_t>
CounterBank::read(EventKind kind) const
{
    if (!isReadable(vendor_, kind))
        return std::nullopt;
    return raw_[static_cast<size_t>(kind)];
}

uint64_t
CounterBank::readOrDie(EventKind kind) const
{
    std::optional<uint64_t> v = read(kind);
    if (!v) {
        lll_fatal("event '%s' is not exposed by vendor %s",
                  eventName(kind), platforms::vendorName(vendor_));
    }
    return *v;
}

RoutineProfiler::RoutineProfiler(const platforms::Platform &platform)
    : platform_(platform)
{
}

RoutineProfile
RoutineProfiler::profile(const sim::RunResult &run,
                         const std::string &routine) const
{
    CounterBank bank(run, platform_.vendor, platform_.freqGHz);

    RoutineProfile p;
    p.routine = routine;
    p.seconds = bank.seconds();

    const double line_gb = platform_.lineBytes * 1e-9;
    uint64_t reads = bank.readOrDie(EventKind::MemReadLines);
    uint64_t writes = bank.readOrDie(EventKind::MemWriteLines);
    p.readGBs = static_cast<double>(reads) * line_gb / p.seconds;
    p.writeGBs = static_cast<double>(writes) * line_gb / p.seconds;
    p.totalGBs = p.readGBs + p.writeGBs;

    // Demand-vs-prefetch split is vendor-limited; report it when the
    // counters exist (paper: "this data is also often exposed through
    // performance counters or one may determine it by disabling the
    // hardware prefetcher").
    if (auto hw = bank.read(EventKind::HwPrefetchMemLines)) {
        auto sw = bank.read(EventKind::SwPrefetchMemLines);
        uint64_t pref = *hw + (sw ? *sw : 0);
        p.demandFraction =
            reads ? 1.0 - static_cast<double>(pref) /
                              static_cast<double>(reads)
                  : 1.0;
        p.demandFractionKnown = true;
    }
    return p;
}

} // namespace lll::counters
