/**
 * @file
 * The performance-counter event taxonomy.
 *
 * The paper's central portability claim is that only *memory traffic*
 * counters (reads/writes reaching memory) are needed for its method, and
 * that those exist on every contemporary processor, while stall-breakdown
 * and latency events vary wildly by vendor (paper Table I).  This module
 * encodes that taxonomy so the analysis layer can be restricted — by
 * construction — to the portable subset.
 */

#ifndef LLL_COUNTERS_EVENT_KIND_HH
#define LLL_COUNTERS_EVENT_KIND_HH

#include <cstdint>

namespace lll::counters
{

/** Counter events the simulated PMU can expose. */
enum class EventKind : uint8_t
{
    // --- portable events (available on every vendor) -------------------
    Cycles,
    MemReadLines,        //!< lines read from memory (L3 miss / BUS_READ)
    MemWriteLines,       //!< lines written to memory (writebacks)

    // --- commonly available, vendor-dependent --------------------------
    L1DemandMisses,
    L2DemandMisses,
    HwPrefetchMemLines,  //!< memory reads initiated by the HW prefetcher
    SwPrefetchMemLines,

    // --- rarely available (the gaps of paper Table I) ------------------
    L1MshrFullStalls,
    L2MshrFullStalls,
    LoadLatencyAbove512, //!< Intel load-latency facility (binned, fuzzy)

    NumEvents,
};

const char *eventName(EventKind kind);

/** True for the events the paper's method is allowed to rely on. */
bool isPortable(EventKind kind);

} // namespace lll::counters

#endif // LLL_COUNTERS_EVENT_KIND_HH
