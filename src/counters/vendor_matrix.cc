#include "counters/vendor_matrix.hh"

#include "util/logging.hh"

namespace lll::counters
{

using platforms::Vendor;

const char *
eventName(EventKind kind)
{
    switch (kind) {
      case EventKind::Cycles:              return "cycles";
      case EventKind::MemReadLines:        return "mem_read_lines";
      case EventKind::MemWriteLines:       return "mem_write_lines";
      case EventKind::L1DemandMisses:      return "l1_demand_misses";
      case EventKind::L2DemandMisses:      return "l2_demand_misses";
      case EventKind::HwPrefetchMemLines:  return "hw_prefetch_mem_lines";
      case EventKind::SwPrefetchMemLines:  return "sw_prefetch_mem_lines";
      case EventKind::L1MshrFullStalls:    return "l1_mshrq_full_stalls";
      case EventKind::L2MshrFullStalls:    return "l2_mshrq_full_stalls";
      case EventKind::LoadLatencyAbove512: return "load_latency_gt_512";
      case EventKind::NumEvents:           break;
    }
    return "?";
}

bool
isPortable(EventKind kind)
{
    switch (kind) {
      case EventKind::Cycles:
      case EventKind::MemReadLines:
      case EventKind::MemWriteLines:
        return true;
      default:
        return false;
    }
}

const char *
visibilityName(Visibility v)
{
    switch (v) {
      case Visibility::None:        return "No";
      case Visibility::VeryLimited: return "Very limited";
      case Visibility::Limited:     return "Limited";
      case Visibility::Full:        return "Yes";
    }
    return "?";
}

Visibility
visibility(Vendor vendor, EventKind kind)
{
    // Portable events first: every vendor exposes cycles and memory
    // traffic (x86 via L3-miss offcore responses, ARM via BUS_*_TOTAL_MEM).
    if (isPortable(kind))
        return Visibility::Full;

    switch (kind) {
      case EventKind::L1DemandMisses:
      case EventKind::L2DemandMisses:
        return vendor == Vendor::Cavium ? Visibility::Limited
                                        : Visibility::Full;

      case EventKind::HwPrefetchMemLines:
      case EventKind::SwPrefetchMemLines:
        // Exposed on Intel/AMD/Fujitsu; determinable on others only by
        // disabling the prefetcher [33].
        return vendor == Vendor::Cavium ? Visibility::None
                                        : Visibility::Limited;

      case EventKind::L1MshrFullStalls:
        // Paper Table I row: Intel and AMD yes, Cavium and Fujitsu no.
        return (vendor == Vendor::Intel || vendor == Vendor::Amd)
                   ? Visibility::Full
                   : Visibility::None;

      case EventKind::L2MshrFullStalls:
        // Paper Table I row: no vendor exposes these.
        return Visibility::None;

      case EventKind::LoadLatencyAbove512:
        // The Intel load-latency facility (PEBS); AMD has IBS.  Binned
        // and imprecise, per the paper's §II analysis.
        return (vendor == Vendor::Intel || vendor == Vendor::Amd)
                   ? Visibility::Limited
                   : Visibility::None;

      default:
        return Visibility::None;
    }
}

bool
isReadable(Vendor vendor, EventKind kind)
{
    return visibility(vendor, kind) != Visibility::None;
}

std::vector<VendorSummary>
vendorSummaries()
{
    auto row = [](Vendor v, Visibility stalls) {
        VendorSummary s;
        s.vendor = v;
        s.stallBreakdown = stalls;
        s.l1MshrFullStalls = visibility(v, EventKind::L1MshrFullStalls);
        s.l2MshrFullStalls = visibility(v, EventKind::L2MshrFullStalls);
        s.memoryLatency = visibility(v, EventKind::LoadLatencyAbove512);
        s.memoryTraffic = visibility(v, EventKind::MemReadLines);
        return s;
    };
    return {
        row(Vendor::Intel, Visibility::Limited),
        row(Vendor::Amd, Visibility::Limited),
        row(Vendor::Cavium, Visibility::VeryLimited),
        row(Vendor::Fujitsu, Visibility::Limited),
    };
}

} // namespace lll::counters
