/**
 * @file
 * Vendor visibility matrix — paper Table I in code.
 *
 * Reads of non-visible events fail, which is how the library proves the
 * portability property: the Little's-law analyzer only ever requests
 * events that every vendor row marks visible.
 */

#ifndef LLL_COUNTERS_VENDOR_MATRIX_HH
#define LLL_COUNTERS_VENDOR_MATRIX_HH

#include <string>
#include <vector>

#include "counters/event_kind.hh"
#include "platforms/platform.hh"

namespace lll::counters
{

/** How well a vendor exposes a class of events. */
enum class Visibility
{
    None,
    VeryLimited,
    Limited,
    Full,
};

const char *visibilityName(Visibility v);

/** Visibility of @p kind on @p vendor (paper Table I, extended). */
Visibility visibility(platforms::Vendor vendor, EventKind kind);

/** True if reading @p kind on @p vendor is possible at all. */
bool isReadable(platforms::Vendor vendor, EventKind kind);

/**
 * Paper Table I rows: the qualitative stall/latency visibility summary.
 */
struct VendorSummary
{
    platforms::Vendor vendor;
    Visibility stallBreakdown;
    Visibility l1MshrFullStalls;
    Visibility l2MshrFullStalls;
    Visibility memoryLatency;
    Visibility memoryTraffic;   //!< always Full — the paper's point
};

std::vector<VendorSummary> vendorSummaries();

} // namespace lll::counters

#endif // LLL_COUNTERS_VENDOR_MATRIX_HH
