#include "xmem/latency_profile.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace lll::xmem
{

using util::ErrorCode;
using util::Result;
using util::Status;

LatencyProfile::LatencyProfile(std::string platform_name, double peak_gbs,
                               std::vector<Point> points)
    : platformName_(std::move(platform_name)), peakGBs_(peak_gbs),
      points_(std::move(points))
{
    lll_assert(!points_.empty(), "latency profile needs at least one point");
    std::sort(points_.begin(), points_.end(),
              [](const Point &a, const Point &b) { return a.bwGBs < b.bwGBs; });
    // Enforce a physically sensible curve: latency never decreases as
    // bandwidth rises (isotonic cleanup of measurement noise).
    for (size_t i = 1; i < points_.size(); ++i) {
        points_[i].latencyNs =
            std::max(points_[i].latencyNs, points_[i - 1].latencyNs);
    }
}

double
LatencyProfile::latencyAt(double bw_gbs) const
{
    return lookup(bw_gbs).latencyNs;
}

LatencyProfile::Lookup
LatencyProfile::lookup(double bw_gbs) const
{
    lll_assert(!points_.empty(), "lookup on empty profile");
    Lookup result;
    if (bw_gbs < points_.front().bwGBs) {
        result.latencyNs = points_.front().latencyNs;
        result.belowMeasuredRange = true;
        return result;
    }
    if (bw_gbs > points_.back().bwGBs) {
        result.latencyNs = points_.back().latencyNs;
        result.aboveMeasuredRange = true;
        return result;
    }
    for (size_t i = 1; i < points_.size(); ++i) {
        if (bw_gbs <= points_[i].bwGBs) {
            const Point &a = points_[i - 1];
            const Point &b = points_[i];
            double t = b.bwGBs > a.bwGBs
                           ? (bw_gbs - a.bwGBs) / (b.bwGBs - a.bwGBs)
                           : 0.0;
            result.latencyNs = a.latencyNs + t * (b.latencyNs - a.latencyNs);
            return result;
        }
    }
    result.latencyNs = points_.back().latencyNs;
    return result;
}

double
LatencyProfile::idleLatencyNs() const
{
    lll_assert(!points_.empty(), "idleLatencyNs on empty profile");
    return points_.front().latencyNs;
}

double
LatencyProfile::minMeasuredGBs() const
{
    lll_assert(!points_.empty(), "minMeasuredGBs on empty profile");
    return points_.front().bwGBs;
}

double
LatencyProfile::maxMeasuredGBs() const
{
    lll_assert(!points_.empty(), "maxMeasuredGBs on empty profile");
    return points_.back().bwGBs;
}

std::string
LatencyProfile::serialize() const
{
    std::ostringstream out;
    out << "# lll latency profile v1\n";
    out << "platform " << platformName_ << "\n";
    out << "peak_gbs " << peakGBs_ << "\n";
    char buf[80];
    for (const Point &pt : points_) {
        std::snprintf(buf, sizeof(buf), "point %.4f %.4f\n", pt.bwGBs,
                      pt.latencyNs);
        out << buf;
    }
    return out.str();
}

Result<LatencyProfile>
LatencyProfile::parse(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    std::string name;
    double peak = 0.0;
    std::vector<Point> points;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "platform") {
            ls >> name;
            if (name.empty()) {
                return Status::error(ErrorCode::CorruptData,
                                     "line %d: platform name missing",
                                     lineno);
            }
        } else if (key == "peak_gbs") {
            ls >> peak;
            if (ls.fail() || !std::isfinite(peak) || peak <= 0.0) {
                return Status::error(ErrorCode::CorruptData,
                                     "line %d: bad peak_gbs: '%s'", lineno,
                                     line.c_str());
            }
        } else if (key == "point") {
            Point pt{};
            ls >> pt.bwGBs >> pt.latencyNs;
            if (ls.fail() || !std::isfinite(pt.bwGBs) ||
                !std::isfinite(pt.latencyNs) || pt.bwGBs < 0.0 ||
                pt.latencyNs <= 0.0) {
                return Status::error(ErrorCode::CorruptData,
                                     "line %d: malformed profile point: "
                                     "'%s'",
                                     lineno, line.c_str());
            }
            points.push_back(pt);
        } else {
            return Status::error(ErrorCode::CorruptData,
                                 "line %d: unknown profile key: '%s'",
                                 lineno, key.c_str());
        }
    }
    if (name.empty())
        return Status::error(ErrorCode::CorruptData,
                             "incomplete latency profile: no platform");
    if (peak <= 0.0)
        return Status::error(ErrorCode::CorruptData,
                             "incomplete latency profile: no peak_gbs");
    if (points.empty())
        return Status::error(ErrorCode::CorruptData,
                             "incomplete latency profile: no points");
    return LatencyProfile(name, peak, std::move(points));
}

Status
LatencyProfile::save(const std::string &path) const
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path);
    if (!out) {
        return Status::error(ErrorCode::IoError,
                             "cannot write latency profile to '%s'",
                             path.c_str());
    }
    out << serialize();
    out.flush();
    if (!out) {
        return Status::error(ErrorCode::IoError,
                             "short write to latency profile '%s'",
                             path.c_str());
    }
    return Status::okStatus();
}

Result<LatencyProfile>
LatencyProfile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        return Status::error(ErrorCode::NotFound,
                             "no latency profile at '%s'", path.c_str());
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        return Status::error(ErrorCode::IoError,
                             "read error on latency profile '%s'",
                             path.c_str());
    }
    Result<LatencyProfile> parsed = parse(buf.str());
    if (!parsed.ok())
        return parsed.status().withContext("loading '%s'", path.c_str());
    return parsed;
}

} // namespace lll::xmem
