#include "xmem/latency_profile.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace lll::xmem
{

LatencyProfile::LatencyProfile(std::string platform_name, double peak_gbs,
                               std::vector<Point> points)
    : platformName_(std::move(platform_name)), peakGBs_(peak_gbs),
      points_(std::move(points))
{
    lll_assert(!points_.empty(), "latency profile needs at least one point");
    std::sort(points_.begin(), points_.end(),
              [](const Point &a, const Point &b) { return a.bwGBs < b.bwGBs; });
    // Enforce a physically sensible curve: latency never decreases as
    // bandwidth rises (isotonic cleanup of measurement noise).
    for (size_t i = 1; i < points_.size(); ++i) {
        points_[i].latencyNs =
            std::max(points_[i].latencyNs, points_[i - 1].latencyNs);
    }
}

double
LatencyProfile::latencyAt(double bw_gbs) const
{
    lll_assert(!points_.empty(), "latencyAt on empty profile");
    if (bw_gbs <= points_.front().bwGBs)
        return points_.front().latencyNs;
    if (bw_gbs >= points_.back().bwGBs)
        return points_.back().latencyNs;
    for (size_t i = 1; i < points_.size(); ++i) {
        if (bw_gbs <= points_[i].bwGBs) {
            const Point &a = points_[i - 1];
            const Point &b = points_[i];
            double t = (bw_gbs - a.bwGBs) / (b.bwGBs - a.bwGBs);
            return a.latencyNs + t * (b.latencyNs - a.latencyNs);
        }
    }
    return points_.back().latencyNs;
}

double
LatencyProfile::idleLatencyNs() const
{
    lll_assert(!points_.empty(), "idleLatencyNs on empty profile");
    return points_.front().latencyNs;
}

double
LatencyProfile::maxMeasuredGBs() const
{
    lll_assert(!points_.empty(), "maxMeasuredGBs on empty profile");
    return points_.back().bwGBs;
}

std::string
LatencyProfile::serialize() const
{
    std::ostringstream out;
    out << "# lll latency profile v1\n";
    out << "platform " << platformName_ << "\n";
    out << "peak_gbs " << peakGBs_ << "\n";
    char buf[80];
    for (const Point &pt : points_) {
        std::snprintf(buf, sizeof(buf), "point %.4f %.4f\n", pt.bwGBs,
                      pt.latencyNs);
        out << buf;
    }
    return out.str();
}

LatencyProfile
LatencyProfile::deserialize(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    std::string name;
    double peak = 0.0;
    std::vector<Point> points;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "platform") {
            ls >> name;
        } else if (key == "peak_gbs") {
            ls >> peak;
        } else if (key == "point") {
            Point pt{};
            ls >> pt.bwGBs >> pt.latencyNs;
            if (ls.fail())
                lll_fatal("malformed profile point: '%s'", line.c_str());
            points.push_back(pt);
        } else {
            lll_fatal("unknown profile key: '%s'", key.c_str());
        }
    }
    if (name.empty() || peak <= 0.0 || points.empty())
        lll_fatal("incomplete latency profile text");
    return LatencyProfile(name, peak, std::move(points));
}

void
LatencyProfile::save(const std::string &path) const
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path);
    if (!out)
        lll_fatal("cannot write latency profile to '%s'", path.c_str());
    out << serialize();
}

LatencyProfile
LatencyProfile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return LatencyProfile();
    std::ostringstream buf;
    buf << in.rdbuf();
    return deserialize(buf.str());
}

} // namespace lll::xmem
