/**
 * @file
 * The bandwidth→latency profile of a processor.
 *
 * This is the artifact the paper derives from X-Mem [4]: a table of
 * (bandwidth utilization, observed loaded latency) pairs, measured once
 * per processor and thereafter used to translate a routine's measured
 * bandwidth into the average memory latency its requests experienced —
 * the lat_avg input of Equation 2.
 */

#ifndef LLL_XMEM_LATENCY_PROFILE_HH
#define LLL_XMEM_LATENCY_PROFILE_HH

#include <string>
#include <vector>

namespace lll::xmem
{

/**
 * Monotone bandwidth→latency curve with linear interpolation.
 */
class LatencyProfile
{
  public:
    struct Point
    {
        double bwGBs;
        double latencyNs;
    };

    LatencyProfile() = default;

    /**
     * @param platform_name identifies the processor the profile was
     *        measured on
     * @param peak_gbs theoretical peak bandwidth (for pct-of-peak output)
     * @param points raw measurements; sorted and made monotone here
     */
    LatencyProfile(std::string platform_name, double peak_gbs,
                   std::vector<Point> points);

    /**
     * Observed loaded latency (ns) at bandwidth @p bw_gbs.  Clamps below
     * the first and above the last measured point.
     */
    double latencyAt(double bw_gbs) const;

    /** Latency with no load — the vendor-datasheet number the paper warns
     *  is NOT usable for Equation 2. */
    double idleLatencyNs() const;

    /** Highest bandwidth the measurement achieved (peak *achievable*). */
    double maxMeasuredGBs() const;

    const std::string &platformName() const { return platformName_; }
    double peakGBs() const { return peakGBs_; }
    const std::vector<Point> &points() const { return points_; }
    bool empty() const { return points_.empty(); }

    /** Serialize to a small text format (one point per line). */
    std::string serialize() const;

    /** Parse the serialize() format; fatal on malformed input. */
    static LatencyProfile deserialize(const std::string &text);

    /** Write to / read from a file.  load() returns an empty profile if
     *  the file does not exist. */
    void save(const std::string &path) const;
    static LatencyProfile load(const std::string &path);

  private:
    std::string platformName_;
    double peakGBs_ = 0.0;
    std::vector<Point> points_;
};

} // namespace lll::xmem

#endif // LLL_XMEM_LATENCY_PROFILE_HH
