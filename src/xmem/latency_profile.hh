/**
 * @file
 * The bandwidth→latency profile of a processor.
 *
 * This is the artifact the paper derives from X-Mem [4]: a table of
 * (bandwidth utilization, observed loaded latency) pairs, measured once
 * per processor and thereafter used to translate a routine's measured
 * bandwidth into the average memory latency its requests experienced —
 * the lat_avg input of Equation 2.
 */

#ifndef LLL_XMEM_LATENCY_PROFILE_HH
#define LLL_XMEM_LATENCY_PROFILE_HH

#include <string>
#include <vector>

#include "util/status.hh"

namespace lll::xmem
{

/**
 * Monotone bandwidth→latency curve with linear interpolation.
 */
class LatencyProfile
{
  public:
    struct Point
    {
        double bwGBs;
        double latencyNs;
    };

    /** latencyAt() plus whether the query fell outside the measured
     *  range (the value is then a clamped extrapolation the analyzer
     *  must flag; see Analysis::warnings). */
    struct Lookup
    {
        double latencyNs = 0.0;
        bool belowMeasuredRange = false; //!< bw below the idle point
        bool aboveMeasuredRange = false; //!< bw above saturation
    };

    LatencyProfile() = default;

    /**
     * @param platform_name identifies the processor the profile was
     *        measured on
     * @param peak_gbs theoretical peak bandwidth (for pct-of-peak output)
     * @param points raw measurements; sorted and made monotone here
     */
    LatencyProfile(std::string platform_name, double peak_gbs,
                   std::vector<Point> points);

    /**
     * Observed loaded latency (ns) at bandwidth @p bw_gbs.  Clamps below
     * the first and above the last measured point.
     */
    double latencyAt(double bw_gbs) const;

    /** latencyAt() with out-of-measured-range flags. */
    Lookup lookup(double bw_gbs) const;

    /** Latency with no load — the vendor-datasheet number the paper warns
     *  is NOT usable for Equation 2. */
    double idleLatencyNs() const;

    /** Lowest bandwidth in the sweep (the idle-most measured point). */
    double minMeasuredGBs() const;

    /** Highest bandwidth the measurement achieved (peak *achievable*). */
    double maxMeasuredGBs() const;

    const std::string &platformName() const { return platformName_; }
    double peakGBs() const { return peakGBs_; }
    const std::vector<Point> &points() const { return points_; }
    bool empty() const { return points_.empty(); }

    /** Serialize to a small text format (one point per line). */
    std::string serialize() const;

    /**
     * Parse the serialize() format.  Malformed or incomplete text is a
     * CorruptData error with the offending line in the message — never
     * an empty or partially filled profile.
     */
    [[nodiscard]] static util::Result<LatencyProfile> parse(const std::string &text);

    /** Write to @p path; IoError when the file cannot be written. */
    [[nodiscard]] util::Status save(const std::string &path) const;

    /**
     * Read from @p path.  A missing file is NotFound (the "no cache
     * yet" case callers may recover from); an unreadable or corrupt
     * file is IoError/CorruptData and must be surfaced — a truncated
     * profile must never silently become latency 0 and a nonsense
     * n_avg.
     */
    [[nodiscard]] static util::Result<LatencyProfile> load(const std::string &path);

  private:
    std::string platformName_;
    double peakGBs_ = 0.0;
    std::vector<Point> points_;
};

} // namespace lll::xmem

#endif // LLL_XMEM_LATENCY_PROFILE_HH
