/**
 * @file
 * X-Mem-style loaded-latency characterization.
 *
 * Mirrors the measurement the paper performs once per processor with a
 * customized X-Mem [4]: sweep the injected memory load from near-idle to
 * saturation (by varying per-thread concurrency and inter-request delay)
 * and record, at each operating point, the achieved bandwidth and the
 * latency a memory request observes.  Runs against the simulated
 * platform; the resulting LatencyProfile is the per-processor input of
 * the paper's recipe.
 */

#ifndef LLL_XMEM_XMEM_HARNESS_HH
#define LLL_XMEM_XMEM_HARNESS_HH

#include <string>
#include <vector>

#include "platforms/platform.hh"
#include "xmem/latency_profile.hh"

namespace lll::xmem
{

/**
 * The load sweep.
 */
class XMemHarness
{
  public:
    struct Params
    {
        /** Simulated warmup/measure window per operating point (µs). */
        double warmupUs = 15.0;
        double measureUs = 40.0;

        /** Per-thread concurrency levels to sweep. */
        std::vector<unsigned> windows = {1, 2, 3, 4, 6, 8, 10, 12};

        /** Inter-request compute delays (cycles) to sweep at the highest
         *  window, to fill in low-bandwidth points. */
        std::vector<double> delays = {512, 128, 48, 16};

        uint64_t seed = 12345;
    };

    XMemHarness() : params_(Params()) {}
    explicit XMemHarness(Params params) : params_(std::move(params)) {}

    /**
     * Measure the bandwidth→latency profile of @p platform.
     *
     * Load generators issue uniform-random line accesses (so the hardware
     * prefetcher stays untrained and every access pays the full memory
     * path, like X-Mem's pointer chase).
     */
    LatencyProfile measure(const platforms::Platform &platform) const;

    /**
     * Load the profile from @p cache_path, measuring and saving it first
     * if the file does not exist (profiles are per-processor and only
     * ever computed once, as the paper prescribes).
     *
     * A cache file that exists but is corrupt is a CorruptData error —
     * it is never silently remeasured, because the same breakage could
     * hit the freshly saved file too and the user should know their
     * profile store is damaged.  A cached profile for a different
     * platform is remeasured with a warning (the legacy behaviour).
     */
    [[nodiscard]] util::Result<LatencyProfile>
    measureCachedChecked(const platforms::Platform &platform,
                         const std::string &cache_path) const;

  private:
    Params params_;
};

/** Default on-disk location for a platform's profile. */
std::string defaultProfilePath(const platforms::Platform &platform);

} // namespace lll::xmem

#endif // LLL_XMEM_XMEM_HARNESS_HH
