#include "xmem/xmem_harness.hh"

#include <cstdlib>

#include "obs/span.hh"
#include "sim/system.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace lll::xmem
{

namespace
{

/** Path latency (ns) a demand miss pays in the cache hierarchy before
 *  reaching the memory controller. */
double
cachePathNs(const sim::SystemParams &sp)
{
    Tick path = sp.l1.accessLat + sp.l2.accessLat;
    if (sp.hasL3)
        path += sp.l3.accessLat;
    return ticksToNs(path);
}

} // namespace

LatencyProfile
XMemHarness::measure(const platforms::Platform &platform) const
{
    obs::ScopedSpan span("xmem.characterize[" + platform.name + "]");
    std::vector<LatencyProfile::Point> points;
    const double path_ns = cachePathNs(platform.proto);

    auto run_point = [&](unsigned window, double delay_cycles,
                         bool streaming) {
        sim::KernelSpec spec;
        spec.name = "xmem-load";
        if (streaming) {
            // High-load points: forward sequential readers, the load
            // pattern X-Mem's bandwidth threads use.  The hardware
            // prefetcher engages, which is the only way past the
            // L1-MSHR bandwidth ceiling on every platform.
            for (int i = 0; i < 4; ++i) {
                sim::StreamDesc s;
                s.kind = sim::StreamDesc::Kind::Sequential;
                s.footprintLines = (1ULL << 20) * 64 / platform.lineBytes;
                s.weight = 1.0;
                spec.streams.push_back(s);
            }
        } else {
            // Low-load points: random accesses over a buffer larger than
            // any cache (X-Mem's pointer chase), prefetcher untrained.
            sim::StreamDesc s;
            s.kind = sim::StreamDesc::Kind::Random;
            s.footprintLines = (1ULL << 21) * 64 / platform.lineBytes;
            s.weight = 1.0;
            spec.streams.push_back(s);
        }
        spec.window = window;
        spec.computeCyclesPerOp = delay_cycles;

        sim::SystemParams sp = platform.sysParams(platform.totalCores, 1);
        sp.seed = params_.seed;
        sim::System sys(sp, spec);
        sim::RunResult r = sys.run(params_.warmupUs, params_.measureUs);

        LatencyProfile::Point pt;
        pt.bwGBs = r.totalGBs;
        pt.latencyNs = path_ns + r.avgMemLatencyNs;
        points.push_back(pt);
    };

    // Low-bandwidth points: a single in-flight request per core with
    // decreasing think time.
    for (double d : params_.delays)
        run_point(2, d, false);
    // Ramp random-access concurrency toward the L1-MSHR ceiling.
    for (unsigned w : params_.windows)
        run_point(w, 4.0, false);
    // Streaming load pushes the sweep to peak achievable bandwidth;
    // throttled streaming points fill in the knee of the curve.
    for (double d : {48.0, 32.0, 24.0, 16.0, 12.0, 8.0, 6.0})
        run_point(8, d, true);
    for (unsigned w : params_.windows) {
        if (w >= 4)
            run_point(w, 2.0, true);
    }

    return LatencyProfile(platform.name, platform.peakGBs,
                          std::move(points));
}

util::Result<LatencyProfile>
XMemHarness::measureCachedChecked(const platforms::Platform &platform,
                                  const std::string &cache_path) const
{
    util::Result<LatencyProfile> cached = LatencyProfile::load(cache_path);
    if (cached.ok()) {
        if (cached->platformName() == platform.name)
            return cached;
        lll_warn("profile at '%s' is for platform '%s', remeasuring",
                 cache_path.c_str(), cached->platformName().c_str());
    } else if (cached.status().code() != util::ErrorCode::NotFound) {
        // Corrupt or unreadable cache: surface it instead of silently
        // measuring over it (`lll characterize <plat> --fresh` rebuilds).
        return cached.status().withContext(
            "cached profile for '%s' is unusable (delete it or rerun "
            "with --fresh)",
            platform.name.c_str());
    }
    LatencyProfile fresh = measure(platform);
    LLL_RETURN_IF_ERROR(fresh.save(cache_path).withContext(
        "caching profile for '%s'", platform.name.c_str()));
    return fresh;
}

std::string
defaultProfilePath(const platforms::Platform &platform)
{
    const char *dir = std::getenv("LLL_PROFILE_DIR");
    std::string base = dir ? dir : "data/profiles";
    // Design-space candidates ("skl~banks=8,...") are cache artifacts,
    // not stock-platform truth: keep them in their own subdirectory so
    // the committed profiles stay alone in the top level.
    if (platform.name.find('~') != std::string::npos)
        base += "/candidates";
    return base + "/" + platform.name + ".profile";
}

} // namespace lll::xmem
