/**
 * @file
 * The *stable* public surface of the LLL library.
 *
 * Where lll.hh pulls in everything (simulator internals, observability
 * plumbing, lint machinery), this header exports only the types a
 * downstream consumer should build against:
 *
 *   - service::RunRequest / RunResponse / RunService — the versioned
 *     batched-analysis API (`lll serve`), the schema every later
 *     transport (sockets, multi-backend) will reuse; schema_version 2
 *     adds the "kind" discriminator (kind:"search" submits a
 *     design-space search over the same connection);
 *   - search::SearchSpec / Searcher / SearchResult — the bounds-pruned
 *     design-space autotuner behind `lll search` and kind:"search";
 *   - core::Analyzer / Analysis — Little's-law analysis (paper Eq. 2);
 *   - core::Recipe / RecipeDecision — the optimization guidance loop
 *     (paper Fig. 1);
 *   - util::Status / Result<T> — the error contract of every checked
 *     entry point;
 *   - util::Diagnostic / DiagnosticList — structured findings with
 *     stable LLL-* ids.
 *
 * LLL_API_VERSION bumps when any of these types changes incompatibly;
 * the request/response line schema is versioned separately by
 * service::kServiceSchemaVersion, and `--json` CLI output by
 * obs::kJsonEnvelopeVersion.
 *
 * Version 2: the search subsystem joined the stable surface, the
 * service request/response pair grew schemaVersion/kind, and the
 * legacy fatal wrappers (platforms::byName, workloads::workloadByName,
 * xmem::XMemHarness::measureCached) — deprecated since version 1 —
 * were removed in favor of the Result<T>-returning variants
 * re-exported here.
 *
 * Everything reachable only through lll.hh remains usable but carries
 * no stability promise.
 */

#ifndef LLL_LLL_API_HH
#define LLL_LLL_API_HH

/** Stable-surface version: bumped on incompatible changes to any type
 *  exported by this header. */
#define LLL_API_VERSION 2

#include "core/analyzer.hh"
#include "core/recipe.hh"
#include "search/search.hh"
#include "service/service.hh"
#include "util/diagnostic.hh"
#include "util/status.hh"

#endif // LLL_LLL_API_HH
