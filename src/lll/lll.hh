/**
 * @file
 * Umbrella header for the LLL library — performance analysis and
 * optimization with Little's law.
 *
 * This is the *kitchen-sink* include: every module, including
 * simulator internals and observability plumbing, with no stability
 * promise.  Downstream consumers who want a surface that will not
 * shift under them should include lll/api.hh instead — it exports only
 * the stable types (service::RunRequest/RunResponse, core::Analyzer,
 * core::Recipe, util::Status, util::DiagnosticList) and carries the
 * LLL_API_VERSION macro.
 *
 * Typical flow (see examples/quickstart.cpp):
 *
 *   1. pick a platform            platforms::findPlatform("skl")
 *   2. characterize it once       XMemHarness().measureCachedChecked(...)
 *   3. run/profile a routine      core::Experiment / counters::*
 *   4. derive the MLP             core::Analyzer (Little's law, Eq. 2)
 *   5. ask for guidance           core::Recipe (paper Fig. 1)
 *
 * Before step 3, analysis::lintConfig() statically checks the config
 * (`lll lint`); analysis::checkRunDeterminism() guards the simulator
 * against event-order races.
 */

#ifndef LLL_LLL_HH
#define LLL_LLL_HH

#include "analysis/determinism.hh"
#include "analysis/profile_lint.hh"
#include "analysis/spec_lint.hh"
#include "core/analyzer.hh"
#include "core/bounds.hh"
#include "core/experiment.hh"
#include "core/littles_law.hh"
#include "core/recipe.hh"
#include "core/roofline.hh"
#include "core/sweep.hh"
#include "core/tma.hh"
#include "counters/counter_bank.hh"
#include "counters/vendor_matrix.hh"
#include "obs/export.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "platforms/platform.hh"
#include "service/service.hh"
#include "sim/system.hh"
#include "util/table.hh"
#include "workloads/optimization.hh"
#include "workloads/workload.hh"
#include "xmem/latency_profile.hh"
#include "xmem/xmem_harness.hh"

#endif // LLL_LLL_HH
