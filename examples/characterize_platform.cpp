/**
 * @file
 * Platform characterization — the X-Mem step of the paper's method.
 *
 * Measures (or refreshes) the bandwidth→latency profile of a platform by
 * sweeping injected load from near-idle to saturation, prints the curve,
 * and derives the figures the analysis layer keys on: idle latency, peak
 * achievable bandwidth, and the bandwidth ceilings implied by the L1 and
 * L2 MSHR queues (the extra rooflines of paper Fig. 2).
 *
 *   ./characterize_platform [platform|all] [--fresh]
 */

#include <cstdio>
#include <cstring>

#include "lll/lll.hh"

using namespace lll;

static int
characterize(const platforms::Platform &plat, bool fresh)
{
    xmem::XMemHarness harness;
    std::string path = xmem::defaultProfilePath(plat);
    if (fresh)
        std::remove(path.c_str());
    util::Result<xmem::LatencyProfile> profile_r =
        harness.measureCachedChecked(plat, path);
    if (!profile_r.ok()) {
        std::fprintf(stderr, "characterize_platform: %s\n",
                     profile_r.status().toString().c_str());
        return 1;
    }
    xmem::LatencyProfile profile = profile_r.take();

    Table t({"BW (GB/s)", "% peak", "loaded latency (ns)",
             "x idle"});
    t.setCaption("Bandwidth -> latency profile: " + plat.description);
    for (const xmem::LatencyProfile::Point &pt : profile.points()) {
        t.addRow({fmtDouble(pt.bwGBs, 1),
                  fmtDouble(pt.bwGBs / plat.peakGBs * 100.0, 0) + "%",
                  fmtDouble(pt.latencyNs, 1),
                  fmtDouble(pt.latencyNs / profile.idleLatencyNs(), 2)});
    }
    std::fputs(t.render().c_str(), stdout);

    core::Roofline roof(plat, profile);
    std::printf("derived figures:\n");
    std::printf("  idle latency          : %.0f ns\n",
                profile.idleLatencyNs());
    std::printf("  peak achievable BW    : %.0f GB/s (%.0f%% of "
                "theoretical)\n",
                profile.maxMeasuredGBs(),
                profile.maxMeasuredGBs() / plat.peakGBs * 100.0);
    std::printf("  L1-MSHR BW ceiling    : %.0f GB/s (%u MSHRs x %d "
                "cores)\n",
                roof.mshrCeilingGBs(core::MshrLevel::L1, plat.totalCores),
                plat.l1Mshrs, plat.totalCores);
    std::printf("  L2-MSHR BW ceiling    : %.0f GB/s (%u MSHRs x %d "
                "cores)\n",
                roof.mshrCeilingGBs(core::MshrLevel::L2, plat.totalCores),
                plat.l2Mshrs, plat.totalCores);
    std::printf("  profile cached at     : %s\n\n", path.c_str());
    return 0;
}

int
main(int argc, char **argv)
{
    std::string which = argc > 1 ? argv[1] : "all";
    bool fresh = argc > 2 && std::strcmp(argv[2], "--fresh") == 0;
    if (which == "all") {
        for (const platforms::Platform &p : platforms::allPlatforms()) {
            if (int rc = characterize(p, fresh))
                return rc;
        }
        return 0;
    }
    util::Result<platforms::Platform> plat =
        platforms::findPlatform(which);
    if (!plat.ok()) {
        std::fprintf(stderr, "characterize_platform: %s\n",
                     plat.status().toString().c_str());
        return 1;
    }
    return characterize(*plat, fresh);
}
