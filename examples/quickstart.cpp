/**
 * @file
 * Quickstart: the paper's whole method in ~60 lines.
 *
 * Analyze one routine (ISx's count_local_keys) on one platform (SKL):
 * measure its bandwidth with portable counters, translate to loaded
 * latency via the once-per-processor X-Mem profile, apply Little's law
 * to get the observed MLP, compare against the limiting MSHR queue, and
 * ask the recipe what to do next.
 *
 *   ./quickstart [platform] [workload]     (defaults: skl isx)
 */

#include <cstdio>

#include "lll/lll.hh"

using namespace lll;

int
main(int argc, char **argv)
{
    // 1. The platform (a simulated stand-in for the paper's hardware).
    util::Result<platforms::Platform> plat_r =
        platforms::findPlatform(argc > 1 ? argv[1] : "skl");
    util::Result<workloads::WorkloadPtr> work_r =
        workloads::findWorkload(argc > 2 ? argv[2] : "isx");
    if (!plat_r.ok() || !work_r.ok()) {
        const util::Status &bad =
            plat_r.ok() ? work_r.status() : plat_r.status();
        std::fprintf(stderr, "quickstart: %s\n", bad.toString().c_str());
        return 1;
    }
    platforms::Platform plat = plat_r.take();
    workloads::WorkloadPtr work = work_r.take();

    std::printf("Platform : %s (%d cores, %.0f GB/s peak, %u/%u L1/L2 "
                "MSHRs per core)\n",
                plat.description.c_str(), plat.totalCores, plat.peakGBs,
                plat.l1Mshrs, plat.l2Mshrs);
    std::printf("Routine  : %s (%s)\n\n", work->routine().c_str(),
                work->description().c_str());

    // 2. The bandwidth->latency profile, measured once per processor
    //    (cached under data/profiles/).
    xmem::XMemHarness harness;
    util::Result<xmem::LatencyProfile> profile_r =
        harness.measureCachedChecked(plat,
                                     xmem::defaultProfilePath(plat));
    if (!profile_r.ok()) {
        std::fprintf(stderr, "quickstart: %s\n",
                     profile_r.status().toString().c_str());
        return 1;
    }
    xmem::LatencyProfile profile = profile_r.take();
    std::printf("Profile  : idle %.0f ns, %.0f ns at peak achievable "
                "%.0f GB/s\n\n",
                profile.idleLatencyNs(),
                profile.latencyAt(profile.maxMeasuredGBs()),
                profile.maxMeasuredGBs());

    // 3. Run the routine on a loaded node and profile it.
    core::Experiment exp(plat, *work, profile);
    const core::StageMetrics &m = exp.stage(workloads::OptSet{});

    // 4. The metric: observed MLP via Little's law (Equation 2).
    const core::Analysis &a = m.analysis;
    std::printf("Measured : BW %.1f GB/s (%.0f%% of peak) -> loaded "
                "latency %.0f ns\n",
                a.bwGBs, a.pctPeak * 100.0, a.latencyNs);
    std::printf("Little   : n_avg = %.0f ns x %.1f GB/s / %u B / %d "
                "cores = %.2f\n",
                a.latencyNs, a.bwGBs, plat.lineBytes, a.coresUsed,
                a.nAvg);
    std::printf("Limit    : %s MSHR queue, %u entries (%s accesses)\n\n",
                core::mshrLevelName(a.limitingLevel), a.limitingMshrs,
                core::accessClassName(a.accessClass));

    // 5. The recipe (paper Figure 1).
    core::Recipe recipe(plat);
    core::RecipeDecision d = recipe.advise(a, workloads::OptSet{});
    std::printf("Verdict  : %s\n\nRecommendations:\n", d.summary.c_str());
    for (const core::Recommendation &r : d.recommendations) {
        std::printf("  [%s] %-22s %s\n", r.recommended ? "TRY " : "skip",
                    workloads::optName(r.opt), r.rationale.c_str());
    }

    // Validate the top recommendation end to end.
    auto recs = d.recommendedOpts();
    if (!recs.empty()) {
        workloads::OptSet next = workloads::OptSet{}.with(recs.front());
        double s = exp.speedup({}, next);
        std::printf("\nApplying %s: measured speedup %.2fx\n",
                    workloads::optName(recs.front()), s);
    }
    return 0;
}
