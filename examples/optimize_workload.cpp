/**
 * @file
 * Recipe-driven iterative optimization — the paper's Figure 1 loop run
 * to convergence.
 *
 * Starting from the base variant, repeatedly: analyze, ask the recipe
 * for the most promising optimization, apply it in simulation, keep it
 * if it pays, and stop when the recipe says stop (MSHRQ full or
 * bandwidth wall) or nothing helps — printing the same per-step
 * reasoning a user of the paper's method would follow.
 *
 *   ./optimize_workload [workload] [platform]   (defaults: pennant knl)
 */

#include <cstdio>

#include "lll/lll.hh"

using namespace lll;
using workloads::Opt;
using workloads::OptSet;

int
main(int argc, char **argv)
{
    util::Result<workloads::WorkloadPtr> work_r =
        workloads::findWorkload(argc > 1 ? argv[1] : "pennant");
    util::Result<platforms::Platform> plat_r =
        platforms::findPlatform(argc > 2 ? argv[2] : "knl");
    if (!work_r.ok() || !plat_r.ok()) {
        const util::Status &bad =
            work_r.ok() ? plat_r.status() : work_r.status();
        std::fprintf(stderr, "optimize_workload: %s\n",
                     bad.toString().c_str());
        return 1;
    }
    workloads::WorkloadPtr work = work_r.take();
    platforms::Platform plat = plat_r.take();

    util::Result<xmem::LatencyProfile> profile_r =
        xmem::XMemHarness().measureCachedChecked(
            plat, xmem::defaultProfilePath(plat));
    if (!profile_r.ok()) {
        std::fprintf(stderr, "optimize_workload: %s\n",
                     profile_r.status().toString().c_str());
        return 1;
    }
    xmem::LatencyProfile profile = profile_r.take();
    core::Experiment exp(plat, *work, profile);
    core::Recipe recipe(plat);

    std::printf("Optimizing %s (%s) on %s\n\n", work->routine().c_str(),
                work->name().c_str(), plat.description.c_str());

    OptSet state;
    const double base_throughput = exp.stage(state).throughput;

    for (int step = 1; step <= 8; ++step) {
        const core::StageMetrics &m = exp.stage(state);
        const core::Analysis &a = m.analysis;
        std::printf("step %d: [%s]\n", step, state.label().c_str());
        std::printf("  BW %.1f GB/s (%.0f%%), lat %.0f ns, n_avg %.2f "
                    "of %u %s MSHRs, cumulative %.2fx\n",
                    a.bwGBs, a.pctPeak * 100.0, a.latencyNs, a.nAvg,
                    a.limitingMshrs,
                    core::mshrLevelName(a.limitingLevel),
                    m.throughput / base_throughput);

        core::RecipeDecision d = recipe.advise(a, state);
        std::printf("  recipe: %s\n", d.summary.c_str());
        if (d.stop) {
            std::printf("  recipe says stop.\n");
            break;
        }

        // Try recommendations in order until one pays off (the paper's
        // "repeat the process depending on observed performance").
        bool improved = false;
        for (Opt opt : d.recommendedOpts()) {
            OptSet candidate = state.with(opt);
            double s = exp.speedup(state, candidate);
            std::printf("  try %-20s -> %.2fx %s\n",
                        workloads::optName(opt), s,
                        s >= 1.02 ? "(kept)" : "(reverted)");
            if (s >= 1.02) {
                state = candidate;
                improved = true;
                break;
            }
        }
        if (!improved) {
            std::printf("  no recommended optimization helped; user "
                        "intuition takes over from here (paper SIV-F).\n");
            break;
        }
        std::printf("\n");
    }

    const core::StageMetrics &fin = exp.stage(state);
    std::printf("\nfinal variant [%s]: %.2fx over base, BW %.1f GB/s "
                "(%.0f%%), n_avg %.2f\n",
                state.label().c_str(), fin.throughput / base_throughput,
                fin.analysis.bwGBs, fin.analysis.pctPeak * 100.0,
                fin.analysis.nAvg);
    return 0;
}
