/**
 * @file
 * Roofline explorer — the paper's Fig. 2 view for any platform, with
 * every modelled workload placed on it.
 *
 * Prints the classic roofs, the MSHR-imposed bandwidth ceilings, and
 * each workload's base-variant operating point (bandwidth and which
 * ceiling pins it), showing at a glance who is compute bound, who is
 * bandwidth bound, and who is *MSHR* bound — the distinction the
 * classic roofline cannot draw.
 *
 *   ./roofline_explorer [platform]   (default: knl)
 */

#include <cstdio>

#include "lll/lll.hh"

using namespace lll;

int
main(int argc, char **argv)
{
    util::Result<platforms::Platform> plat_r =
        platforms::findPlatform(argc > 1 ? argv[1] : "knl");
    if (!plat_r.ok()) {
        std::fprintf(stderr, "roofline_explorer: %s\n",
                     plat_r.status().toString().c_str());
        return 1;
    }
    platforms::Platform plat = plat_r.take();
    util::Result<xmem::LatencyProfile> profile_r =
        xmem::XMemHarness().measureCachedChecked(
            plat, xmem::defaultProfilePath(plat));
    if (!profile_r.ok()) {
        std::fprintf(stderr, "roofline_explorer: %s\n",
                     profile_r.status().toString().c_str());
        return 1;
    }
    xmem::LatencyProfile profile = profile_r.take();
    core::Roofline roof(plat, profile);

    const int cores = plat.totalCores;
    double l1_bw = roof.mshrCeilingGBs(core::MshrLevel::L1, cores);
    double l2_bw = roof.mshrCeilingGBs(core::MshrLevel::L2, cores);

    std::printf("Roofline for %s\n", plat.description.c_str());
    std::printf("  compute roof      : %.0f GFlop/s\n", roof.peakGFlops());
    std::printf("  bandwidth roof    : %.0f GB/s\n", roof.peakGBs());
    std::printf("  L1-MSHR ceiling   : %.0f GB/s\n", l1_bw);
    std::printf("  L2-MSHR ceiling   : %.0f GB/s\n", l2_bw);
    std::printf("  ridge intensity   : %.2f flop/byte\n\n",
                roof.ridgeIntensity());

    Table t({"workload", "routine", "BW (GB/s)", "n_avg", "pattern",
             "pinned by"});
    t.setCaption("Base variants on the roofline");
    for (const workloads::WorkloadPtr &w : workloads::allWorkloads()) {
        core::Experiment exp(plat, *w, profile);
        const core::StageMetrics &m = exp.stage(workloads::OptSet{});
        const core::Analysis &a = m.analysis;

        const char *pinned = "core/compute";
        double ceiling = a.limitingLevel == core::MshrLevel::L1 ? l1_bw
                                                                : l2_bw;
        if (a.nearBandwidthLimit)
            pinned = "bandwidth roof";
        else if (a.bwGBs > 0.85 * ceiling)
            pinned = a.limitingLevel == core::MshrLevel::L1
                         ? "L1-MSHR ceiling"
                         : "L2-MSHR ceiling";

        t.addRow({w->name(), w->routine(), fmtDouble(a.bwGBs, 1),
                  fmtDouble(a.nAvg, 2),
                  core::accessClassName(a.accessClass), pinned});
    }
    std::fputs(t.render().c_str(), stdout);
    return 0;
}
