/**
 * @file
 * Memory-trace inspection: attach a RequestTracer to the memory
 * controller, run a workload, and summarize what reached memory —
 * request mix, spatial locality, and the latency distribution
 * percentiles.  Optionally dumps the trace window as CSV.
 *
 * The locality score makes the paper's random-vs-streaming
 * classification visible at the request level: ISx scores near 0,
 * HPCG near 1.
 *
 *   ./trace_memory [workload] [platform] [csv-path] [json-path]
 *
 * csv-path receives the trace window (RequestTracer::toCsv);
 * json-path receives the full obs export — sampled time series,
 * counters and the trace window spliced in as a "trace" section.
 */

#include <cstdio>

#include "lll/lll.hh"
#include "sim/tracer.hh"

using namespace lll;

int
main(int argc, char **argv)
{
    util::Result<workloads::WorkloadPtr> work_r =
        workloads::findWorkload(argc > 1 ? argv[1] : "isx");
    util::Result<platforms::Platform> plat_r =
        platforms::findPlatform(argc > 2 ? argv[2] : "skl");
    if (!work_r.ok() || !plat_r.ok()) {
        const util::Status &bad =
            work_r.ok() ? plat_r.status() : work_r.status();
        std::fprintf(stderr, "trace_memory: %s\n",
                     bad.toString().c_str());
        return 1;
    }
    workloads::WorkloadPtr work = work_r.take();
    platforms::Platform plat = plat_r.take();

    sim::KernelSpec spec = work->spec(plat, workloads::OptSet{});
    sim::SystemParams sp = plat.sysParams(plat.totalCores, 1);
    // Declared before the System: its destructor freezes gauges into
    // the registry, so the registry must outlive it.
    obs::MetricRegistry registry;
    sim::RequestTracer tracer(1 << 15);
    sim::System sys(sp, spec);

    sys.mem().setTracer(&tracer);
    sys.attachObservability(registry);
    sim::RunResult r = sys.run(work->warmupUs(), work->measureUs());

    uint64_t demand = 0, hwpf = 0, swpf = 0, wb = 0;
    for (const sim::RequestTracer::Event &ev : tracer.events()) {
        switch (ev.type) {
          case sim::ReqType::HwPrefetch: ++hwpf; break;
          case sim::ReqType::SwPrefetch: ++swpf; break;
          case sim::ReqType::Writeback:  ++wb; break;
          default:                       ++demand; break;
        }
    }

    std::printf("Memory trace: %s on %s\n", work->routine().c_str(),
                plat.name.c_str());
    std::printf("  recorded            : %zu events (of %llu total)\n",
                tracer.size(),
                static_cast<unsigned long long>(tracer.total()));
    std::printf("  mix                 : %llu demand, %llu hw-pf, "
                "%llu sw-pf, %llu writeback\n",
                (unsigned long long)demand, (unsigned long long)hwpf,
                (unsigned long long)swpf, (unsigned long long)wb);
    std::printf("  locality score      : %.2f  (1.0 = streaming, "
                "~0 = random)\n",
                tracer.localityScore());
    std::printf("  bandwidth           : %.1f GB/s (%.0f%% of peak)\n",
                r.totalGBs, r.totalGBs / plat.peakGBs * 100.0);
    std::printf("  latency mean/p50/p95/p99: %.0f / %.0f / %.0f / %.0f "
                "ns\n",
                r.avgMemLatencyNs, r.p50MemLatencyNs, r.p95MemLatencyNs,
                r.p99MemLatencyNs);

    std::printf("  telemetry           : %llu snapshots of %zu series\n",
                static_cast<unsigned long long>(registry.snapshots()),
                registry.allSeries().size());

    if (argc > 3 && obs::writeExport(argv[3], tracer.toCsv()))
        std::printf("  trace window written: %s\n", argv[3]);
    if (argc > 4) {
        std::vector<obs::JsonSection> extra{{"trace", tracer.toJson()}};
        std::string json = obs::exportJson(registry, nullptr, extra);
        if (obs::writeExport(argv[4], json))
            std::printf("  metrics written     : %s\n", argv[4]);
    }
    return 0;
}
